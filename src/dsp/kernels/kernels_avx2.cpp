// AVX2 + FMA tier of the kernel layer. This translation unit is the only
// one compiled with -mavx2 -mfma (see src/dsp/CMakeLists.txt); it must
// never be entered unless the runtime dispatcher verified CPU support, so
// no function here re-checks cpuid.
//
// Precision notes (the documented ulp story for tests/test_kernels.cpp):
//  - Butterflies and complex multiplies use FMA, so individual elements can
//    differ from the scalar tier by the usual fused-rounding ulp; the FFT
//    cascade amplifies this to ~1e-13 relative at n = 16384.
//  - The visibility kernel deliberately uses mul+sub (no FMA) so its g
//    values match the scalar tier bit-for-bit on the same inputs, keeping
//    crossing counts — and therefore geometry decisions — identical across
//    dispatch tiers.
//  - Reductions use 4-way split accumulators; the final horizontal combine
//    reorders additions relative to the scalar tier (relative error within
//    ~4 ulp of the condition number of the sum).

#if defined(UNIQ_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>

#include "dsp/kernels/kernel_table.h"

namespace uniq::dsp::kernels::detail {

namespace {

using Complex = std::complex<double>;

// --- FFT butterfly cascades -----------------------------------------------

/// len == 2 stage (twiddle-free) in both DIT and DIF cascades: adjacent
/// (u, v) pairs become (u + v, u - v).
inline void stage2(double* re, double* im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d r = _mm256_loadu_pd(re + i);  // u0 v0 u1 v1
    const __m256d m = _mm256_loadu_pd(im + i);
    const __m256d rs = _mm256_blend_pd(_mm256_hadd_pd(r, r),
                                       _mm256_hsub_pd(r, r), 0xA);
    const __m256d ms = _mm256_blend_pd(_mm256_hadd_pd(m, m),
                                       _mm256_hsub_pd(m, m), 0xA);
    _mm256_storeu_pd(re + i, rs);
    _mm256_storeu_pd(im + i, ms);
  }
  for (; i + 1 < n; i += 2) {
    const double ur = re[i], ui = im[i];
    const double vr = re[i + 1], vi = im[i + 1];
    re[i] = ur + vr;
    im[i] = ui + vi;
    re[i + 1] = ur - vr;
    im[i + 1] = ui - vi;
  }
}

/// len == 4 DIT stage via 128-bit lanes (half == 2 butterflies per block).
inline void stage4Dit(double* re, double* im, std::size_t n,
                      const double* twRe, const double* twIm) {
  const __m128d wr = _mm_loadu_pd(twRe);  // (1, 0/∓1) exact factors
  const __m128d wi = _mm_loadu_pd(twIm);
  for (std::size_t i = 0; i + 3 < n; i += 4) {
    const __m128d br = _mm_loadu_pd(re + i + 2);
    const __m128d bi = _mm_loadu_pd(im + i + 2);
    const __m128d vr = _mm_fnmadd_pd(bi, wi, _mm_mul_pd(br, wr));
    const __m128d vi = _mm_fmadd_pd(bi, wr, _mm_mul_pd(br, wi));
    const __m128d ur = _mm_loadu_pd(re + i);
    const __m128d ui = _mm_loadu_pd(im + i);
    _mm_storeu_pd(re + i, _mm_add_pd(ur, vr));
    _mm_storeu_pd(im + i, _mm_add_pd(ui, vi));
    _mm_storeu_pd(re + i + 2, _mm_sub_pd(ur, vr));
    _mm_storeu_pd(im + i + 2, _mm_sub_pd(ui, vi));
  }
}

/// len == 4 DIF stage: u' = u + v, v' = (u - v) * w.
inline void stage4Dif(double* re, double* im, std::size_t n,
                      const double* twRe, const double* twIm) {
  const __m128d wr = _mm_loadu_pd(twRe);
  const __m128d wi = _mm_loadu_pd(twIm);
  for (std::size_t i = 0; i + 3 < n; i += 4) {
    const __m128d ur = _mm_loadu_pd(re + i);
    const __m128d ui = _mm_loadu_pd(im + i);
    const __m128d br = _mm_loadu_pd(re + i + 2);
    const __m128d bi = _mm_loadu_pd(im + i + 2);
    const __m128d tr = _mm_sub_pd(ur, br);
    const __m128d ti = _mm_sub_pd(ui, bi);
    _mm_storeu_pd(re + i, _mm_add_pd(ur, br));
    _mm_storeu_pd(im + i, _mm_add_pd(ui, bi));
    _mm_storeu_pd(re + i + 2, _mm_fnmadd_pd(ti, wi, _mm_mul_pd(tr, wr)));
    _mm_storeu_pd(im + i + 2, _mm_fmadd_pd(ti, wr, _mm_mul_pd(tr, wi)));
  }
}

void ditStagesImpl(double* re, double* im, std::size_t n, const double* twRe,
                   const double* twIm, bool firstStageDone) {
  if (n < 2) return;
  if (!firstStageDone) stage2(re, im, n);
  if (n >= 4) stage4Dit(re, im, n, twRe, twIm);
  for (std::size_t len = 8; len <= n; len <<= 1) {
    const std::size_t half = len / 2;  // >= 4: full 256-bit butterflies
    const double* wr = twRe + (half - 2);
    const double* wi = twIm + (half - 2);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; k += 4) {
        const __m256d wrv = _mm256_loadu_pd(wr + k);
        const __m256d wiv = _mm256_loadu_pd(wi + k);
        const __m256d br = _mm256_loadu_pd(re + i + k + half);
        const __m256d bi = _mm256_loadu_pd(im + i + k + half);
        const __m256d vr = _mm256_fnmadd_pd(bi, wiv, _mm256_mul_pd(br, wrv));
        const __m256d vi = _mm256_fmadd_pd(bi, wrv, _mm256_mul_pd(br, wiv));
        const __m256d ur = _mm256_loadu_pd(re + i + k);
        const __m256d ui = _mm256_loadu_pd(im + i + k);
        _mm256_storeu_pd(re + i + k, _mm256_add_pd(ur, vr));
        _mm256_storeu_pd(im + i + k, _mm256_add_pd(ui, vi));
        _mm256_storeu_pd(re + i + k + half, _mm256_sub_pd(ur, vr));
        _mm256_storeu_pd(im + i + k + half, _mm256_sub_pd(ui, vi));
      }
    }
  }
}

void difStagesImpl(double* re, double* im, std::size_t n, const double* twRe,
                   const double* twIm) {
  if (n < 2) return;
  for (std::size_t len = n; len >= 8; len >>= 1) {
    const std::size_t half = len / 2;
    const double* wr = twRe + (half - 2);
    const double* wi = twIm + (half - 2);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; k += 4) {
        const __m256d wrv = _mm256_loadu_pd(wr + k);
        const __m256d wiv = _mm256_loadu_pd(wi + k);
        const __m256d ur = _mm256_loadu_pd(re + i + k);
        const __m256d ui = _mm256_loadu_pd(im + i + k);
        const __m256d br = _mm256_loadu_pd(re + i + k + half);
        const __m256d bi = _mm256_loadu_pd(im + i + k + half);
        const __m256d tr = _mm256_sub_pd(ur, br);
        const __m256d ti = _mm256_sub_pd(ui, bi);
        _mm256_storeu_pd(re + i + k, _mm256_add_pd(ur, br));
        _mm256_storeu_pd(im + i + k, _mm256_add_pd(ui, bi));
        _mm256_storeu_pd(re + i + k + half,
                         _mm256_fnmadd_pd(ti, wiv, _mm256_mul_pd(tr, wrv)));
        _mm256_storeu_pd(im + i + k + half,
                         _mm256_fmadd_pd(ti, wrv, _mm256_mul_pd(tr, wiv)));
      }
    }
  }
  if (n >= 4) stage4Dif(re, im, n, twRe, twIm);
  stage2(re, im, n);
}

void batchDitStagesImpl(double* re, double* im, std::size_t stride,
                        std::size_t n, const double* twRe,
                        const double* twIm) {
  // Batch-interleaved layout: the inner j loop is contiguous and the
  // twiddle broadcasts, so every stage (including len == 2 and 4) runs as
  // full-width FMA with zero shuffles.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* wrs = twRe + (half - 1);
    const double* wis = twIm + (half - 1);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const __m256d wr = _mm256_set1_pd(wrs[k]);
        const __m256d wi = _mm256_set1_pd(wis[k]);
        double* ur = re + (i + k) * stride;
        double* ui = im + (i + k) * stride;
        double* vr = re + (i + k + half) * stride;
        double* vi = im + (i + k + half) * stride;
        for (std::size_t j = 0; j < stride; j += 4) {
          const __m256d br = _mm256_loadu_pd(vr + j);
          const __m256d bi = _mm256_loadu_pd(vi + j);
          const __m256d xr = _mm256_fnmadd_pd(bi, wi, _mm256_mul_pd(br, wr));
          const __m256d xi = _mm256_fmadd_pd(bi, wr, _mm256_mul_pd(br, wi));
          const __m256d ar = _mm256_loadu_pd(ur + j);
          const __m256d ai = _mm256_loadu_pd(ui + j);
          _mm256_storeu_pd(ur + j, _mm256_add_pd(ar, xr));
          _mm256_storeu_pd(ui + j, _mm256_add_pd(ai, xi));
          _mm256_storeu_pd(vr + j, _mm256_sub_pd(ar, xr));
          _mm256_storeu_pd(vi + j, _mm256_sub_pd(ai, xi));
        }
      }
    }
  }
}

void scaleInPlaceImpl(double* x, std::size_t n, double s) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), sv));
  for (; i < n; ++i) x[i] *= s;
}

// --- Complex pointwise ----------------------------------------------------

void cmulSplitImpl(double* aRe, double* aIm, const double* bRe,
                   const double* bIm, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ar = _mm256_loadu_pd(aRe + i);
    const __m256d ai = _mm256_loadu_pd(aIm + i);
    const __m256d br = _mm256_loadu_pd(bRe + i);
    const __m256d bi = _mm256_loadu_pd(bIm + i);
    _mm256_storeu_pd(aRe + i, _mm256_fnmadd_pd(ai, bi, _mm256_mul_pd(ar, br)));
    _mm256_storeu_pd(aIm + i, _mm256_fmadd_pd(ai, br, _mm256_mul_pd(ar, bi)));
  }
  for (; i < n; ++i) {
    const double ar = aRe[i], ai = aIm[i];
    const double br = bRe[i], bi = bIm[i];
    aRe[i] = ar * br - ai * bi;
    aIm[i] = ar * bi + ai * br;
  }
}

void cmulInterleavedImpl(Complex* a, const Complex* b, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const auto* bd = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d av = _mm256_loadu_pd(ad + 2 * i);
    const __m256d bv = _mm256_loadu_pd(bd + 2 * i);
    const __m256d are = _mm256_movedup_pd(av);        // ar ar
    const __m256d aim = _mm256_permute_pd(av, 0xF);   // ai ai
    const __m256d bsw = _mm256_permute_pd(bv, 0x5);   // bi br
    // even: ar*br - ai*bi ; odd: ar*bi + ai*br
    _mm256_storeu_pd(
        ad + 2 * i,
        _mm256_fmaddsub_pd(are, bv, _mm256_mul_pd(aim, bsw)));
  }
  for (; i < n; ++i) a[i] *= b[i];
}

void cmulConjInterleavedImpl(Complex* a, const Complex* b, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const auto* bd = reinterpret_cast<const double*>(b);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d av = _mm256_loadu_pd(ad + 2 * i);
    const __m256d bv = _mm256_loadu_pd(bd + 2 * i);
    // a * conj(b) == conj(b) * a: broadcast b's components instead so the
    // fmsubadd sign pattern lands on (+, -).
    const __m256d bre = _mm256_movedup_pd(bv);        // br br
    const __m256d bim = _mm256_permute_pd(bv, 0xF);   // bi bi
    const __m256d asw = _mm256_permute_pd(av, 0x5);   // ai ar
    // even: br*ar + bi*ai ; odd: br*ai - bi*ar
    _mm256_storeu_pd(
        ad + 2 * i,
        _mm256_fmsubadd_pd(bre, av, _mm256_mul_pd(bim, asw)));
  }
  for (; i < n; ++i) {
    const double ar = a[i].real(), ai = a[i].imag();
    const double br = b[i].real(), bi = b[i].imag();
    a[i] = Complex(ar * br + ai * bi, ai * br - ar * bi);
  }
}

void spectralDivideImpl(const Complex* num, const Complex* den, double eps,
                        Complex* out, std::size_t n) {
  const auto* nd = reinterpret_cast<const double*>(num);
  const auto* dd = reinterpret_cast<const double*>(den);
  auto* od = reinterpret_cast<double*>(out);
  const __m256d epsv = _mm256_set1_pd(eps);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d nv = _mm256_loadu_pd(nd + 2 * i);
    const __m256d dv = _mm256_loadu_pd(dd + 2 * i);
    const __m256d dre = _mm256_movedup_pd(dv);
    const __m256d dim = _mm256_permute_pd(dv, 0xF);
    const __m256d nsw = _mm256_permute_pd(nv, 0x5);
    // num * conj(den): even nr*dr + ni*di ; odd ni*dr - nr*di.
    const __m256d cross =
        _mm256_fmsubadd_pd(dre, nv, _mm256_mul_pd(dim, nsw));
    const __m256d d2 = _mm256_mul_pd(dv, dv);
    const __m256d mag =
        _mm256_add_pd(_mm256_hadd_pd(d2, d2), epsv);  // |d|^2 per lane pair
    _mm256_storeu_pd(od + 2 * i, _mm256_div_pd(cross, mag));
  }
  for (; i < n; ++i) {
    const double nr = num[i].real(), ni = num[i].imag();
    const double dr = den[i].real(), di = den[i].imag();
    const double mag = dr * dr + di * di + eps;
    out[i] = Complex((nr * dr + ni * di) / mag, (ni * dr - nr * di) / mag);
  }
}

double maxNormImpl(const Complex* x, std::size_t n) {
  const auto* xd = reinterpret_cast<const double*>(x);
  __m256d best = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(xd + 2 * i);
    const __m256d b = _mm256_loadu_pd(xd + 2 * i + 4);
    const __m256d norms =
        _mm256_hadd_pd(_mm256_mul_pd(a, a), _mm256_mul_pd(b, b));
    best = _mm256_max_pd(best, norms);
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, best);
  double out = std::max(std::max(lanes[0], lanes[1]),
                        std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) {
    const double r = x[i].real(), im = x[i].imag();
    out = std::max(out, r * r + im * im);
  }
  return out;
}

// --- Reductions -----------------------------------------------------------

inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

double dotProductImpl(const double* a, const double* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

double sumSquaresImpl(const double* x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d v0 = _mm256_loadu_pd(x + i);
    const __m256d v1 = _mm256_loadu_pd(x + i + 4);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i] * x[i];
  return s;
}

double sumImpl(const double* x, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
  }
  double s = hsum(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += x[i];
  return s;
}

void pearsonAccumImpl(const double* a, const double* b, std::size_t n,
                      double ma, double mb, double out[3]) {
  const __m256d mav = _mm256_set1_pd(ma);
  const __m256d mbv = _mm256_set1_pd(mb);
  __m256d sab = _mm256_setzero_pd();
  __m256d saa = _mm256_setzero_pd();
  __m256d sbb = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d da = _mm256_sub_pd(_mm256_loadu_pd(a + i), mav);
    const __m256d db = _mm256_sub_pd(_mm256_loadu_pd(b + i), mbv);
    sab = _mm256_fmadd_pd(da, db, sab);
    saa = _mm256_fmadd_pd(da, da, saa);
    sbb = _mm256_fmadd_pd(db, db, sbb);
  }
  double rab = hsum(sab), raa = hsum(saa), rbb = hsum(sbb);
  for (; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    rab += da * db;
    raa += da * da;
    rbb += db * db;
  }
  out[0] = rab;
  out[1] = raa;
  out[2] = rbb;
}

// --- Geometry visibility scan ---------------------------------------------

int visibilityCrossingsImpl(const double* nx, const double* ny,
                            const double* cdot, std::size_t n, double px,
                            double py, VisibilityCrossing* crossings,
                            int maxCrossings) {
  // Fused single pass: each 4-lane block computes g in registers, reduces
  // it to a sign mask, and xors against the previous lane's sign bit
  // carried between blocks — no materialized g array, no scratch. Blocks
  // with no crossing (the vast majority) never touch memory beyond the
  // three table loads. mul+sub (no FMA) on purpose — bitwise identical to
  // the scalar tier, so both tiers count the same crossings.
  //
  // gAt recomputes a single g value at the (rare) hit indices. It is
  // spelled in SSE scalar intrinsics rather than plain C arithmetic so the
  // compiler cannot contract it into an FMA in this -mfma TU, which would
  // de-synchronize it from the vector pass that flagged the crossing.
  const auto gAt = [&](std::size_t idx) {
    const __m128d a = _mm_mul_sd(_mm_set_sd(px), _mm_load_sd(nx + idx));
    const __m128d b = _mm_mul_sd(_mm_set_sd(py), _mm_load_sd(ny + idx));
    const __m128d r = cdot
                          ? _mm_sub_sd(_mm_sub_sd(_mm_load_sd(cdot + idx), a),
                                       b)
                          : _mm_add_sd(a, b);
    return _mm_cvtsd_f64(r);
  };
  int found = 0;
  const auto emit = [&](std::size_t idx) {
    const double gPrev = gAt(idx);
    const double gNext = gAt(idx + 1 == n ? 0 : idx + 1);
    const double denom = gPrev - gNext;
    const double f =
        std::fabs(denom) > 1e-30 ? std::clamp(gPrev / denom, 0.0, 1.0) : 0.5;
    if (found < maxCrossings)
      crossings[found].u = static_cast<double>(idx) + f;
    ++found;
  };

  const __m256d pxv = _mm256_set1_pd(px);
  const __m256d pyv = _mm256_set1_pd(py);
  const __m256d zero = _mm256_setzero_pd();
  // Sign bit of g[i - 1]. Seeding it with sign(g[0]) makes the first
  // block's k == 0 pair ((-1, 0), which does not exist — the wrap pair
  // (n-1, 0) is handled by the tail) xor to zero.
  unsigned prevBit = gAt(0) < 0.0 ? 1u : 0u;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d g;
    if (cdot) {
      const __m256d t =
          _mm256_sub_pd(_mm256_loadu_pd(cdot + i),
                        _mm256_mul_pd(pxv, _mm256_loadu_pd(nx + i)));
      g = _mm256_sub_pd(t, _mm256_mul_pd(pyv, _mm256_loadu_pd(ny + i)));
    } else {
      g = _mm256_add_pd(_mm256_mul_pd(pxv, _mm256_loadu_pd(nx + i)),
                        _mm256_mul_pd(pyv, _mm256_loadu_pd(ny + i)));
    }
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_cmp_pd(g, zero, _CMP_LT_OQ)));
    // Bit k of `hits` flags a sign change across pair (i + k - 1, i + k).
    unsigned hits = (((mask << 1) | prevBit) ^ mask) & 0xFu;
    prevBit = mask >> 3;
    while (hits) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(hits));
      hits &= hits - 1;
      emit(i + lane - 1);
    }
  }
  // Tail pairs (i - 1, i) .. (n - 2, n - 1), then the wrap pair (n - 1, 0).
  for (std::size_t idx = i > 0 ? i - 1 : 0; idx < n; ++idx) {
    const double gPrev = gAt(idx);
    const double gNext = gAt(idx + 1 == n ? 0 : idx + 1);
    if ((gPrev < 0.0) != (gNext < 0.0)) emit(idx);
  }
  return found;
}

}  // namespace

const KernelTable& avx2Table() {
  static const KernelTable t = {
      &ditStagesImpl,
      &difStagesImpl,
      &batchDitStagesImpl,
      &scaleInPlaceImpl,
      &cmulSplitImpl,
      &cmulInterleavedImpl,
      &cmulConjInterleavedImpl,
      &spectralDivideImpl,
      &maxNormImpl,
      &dotProductImpl,
      &sumSquaresImpl,
      &sumImpl,
      &pearsonAccumImpl,
      &visibilityCrossingsImpl,
  };
  return t;
}

}  // namespace uniq::dsp::kernels::detail

#endif  // UNIQ_HAVE_AVX2
