#pragma once

#include <complex>
#include <cstddef>

#include "dsp/kernels/kernels.h"

namespace uniq::dsp::kernels::detail {

/// Function-pointer table one ISA tier fills in. The dispatcher resolves a
/// table once per process (plus test overrides); the public wrappers in
/// kernels.h jump through it.
struct KernelTable {
  void (*ditStages)(double*, double*, std::size_t, const double*,
                    const double*, bool firstStageDone);
  void (*difStages)(double*, double*, std::size_t, const double*,
                    const double*);
  void (*batchDitStages)(double*, double*, std::size_t, std::size_t,
                         const double*, const double*);
  void (*scaleInPlace)(double*, std::size_t, double);
  void (*cmulSplit)(double*, double*, const double*, const double*,
                    std::size_t);
  void (*cmulInterleaved)(std::complex<double>*, const std::complex<double>*,
                          std::size_t);
  void (*cmulConjInterleaved)(std::complex<double>*,
                              const std::complex<double>*, std::size_t);
  void (*spectralDivide)(const std::complex<double>*,
                         const std::complex<double>*, double,
                         std::complex<double>*, std::size_t);
  double (*maxNorm)(const std::complex<double>*, std::size_t);
  double (*dotProduct)(const double*, const double*, std::size_t);
  double (*sumSquares)(const double*, std::size_t);
  double (*sum)(const double*, std::size_t);
  void (*pearsonAccum)(const double*, const double*, std::size_t, double,
                       double, double[3]);
  int (*visibilityCrossings)(const double*, const double*, const double*,
                             std::size_t, double, double,
                             VisibilityCrossing*, int);
};

/// The portable tier (always present).
const KernelTable& scalarTable();

#if defined(UNIQ_HAVE_AVX2)
/// The AVX2+FMA tier (present only when the build enabled UNIQ_SIMD).
const KernelTable& avx2Table();
#endif

/// The currently dispatched table.
const KernelTable& table();

}  // namespace uniq::dsp::kernels::detail
