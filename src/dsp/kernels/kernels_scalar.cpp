// Portable scalar tier of the kernel layer. Every kernel here is the
// reference implementation the SIMD tiers are tested against (ulp-bounded
// equality, see tests/test_kernels.cpp). Loops are written with explicit
// double temporaries — the same form PR 1 found keeps GCC from emitting
// hybrid packed/scalar code with stack round-trips on the butterflies.

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>

#include "dsp/kernels/kernel_table.h"

namespace uniq::dsp::kernels::detail {

namespace {

using Complex = std::complex<double>;

// --- FFT butterfly cascades over split re/im lanes ------------------------

/// Stages len = 4, 8, ..., n from the packed tables (offset len/2 - 2).
void multiplyingStagesDit(double* re, double* im, std::size_t n,
                          const double* twRe, const double* twIm) {
  for (std::size_t len = 4; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* wr = twRe + (half - 2);
    const double* wi = twIm + (half - 2);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const double br = re[i + k + half];
        const double bi = im[i + k + half];
        const double vr = br * wr[k] - bi * wi[k];
        const double vi = br * wi[k] + bi * wr[k];
        const double ur = re[i + k];
        const double ui = im[i + k];
        re[i + k] = ur + vr;
        im[i + k] = ui + vi;
        re[i + k + half] = ur - vr;
        im[i + k + half] = ui - vi;
      }
    }
  }
}

void stage2Dit(double* re, double* im, std::size_t n) {
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    const double ur = re[i], ui = im[i];
    const double vr = re[i + 1], vi = im[i + 1];
    re[i] = ur + vr;
    im[i] = ui + vi;
    re[i + 1] = ur - vr;
    im[i + 1] = ui - vi;
  }
}

void ditStagesImpl(double* re, double* im, std::size_t n, const double* twRe,
                   const double* twIm, bool firstStageDone) {
  if (n < 2) return;
  if (!firstStageDone) stage2Dit(re, im, n);
  multiplyingStagesDit(re, im, n, twRe, twIm);
}

void difStagesImpl(double* re, double* im, std::size_t n, const double* twRe,
                   const double* twIm) {
  if (n < 2) return;
  // Descending stages: butterfly u' = u + v, v' = (u - v) * w.
  for (std::size_t len = n; len >= 4; len >>= 1) {
    const std::size_t half = len / 2;
    const double* wr = twRe + (half - 2);
    const double* wi = twIm + (half - 2);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const double ur = re[i + k];
        const double ui = im[i + k];
        const double br = re[i + k + half];
        const double bi = im[i + k + half];
        const double tr = ur - br;
        const double ti = ui - bi;
        re[i + k] = ur + br;
        im[i + k] = ui + bi;
        re[i + k + half] = tr * wr[k] - ti * wi[k];
        im[i + k + half] = tr * wi[k] + ti * wr[k];
      }
    }
  }
  stage2Dit(re, im, n);  // len == 2: same add/sub butterfly both directions
}

void batchDitStagesImpl(double* re, double* im, std::size_t stride,
                        std::size_t n, const double* twRe,
                        const double* twIm) {
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* wrs = twRe + (half - 1);
    const double* wis = twIm + (half - 1);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = wrs[k];
        const double wi = wis[k];
        double* ur = re + (i + k) * stride;
        double* ui = im + (i + k) * stride;
        double* vr = re + (i + k + half) * stride;
        double* vi = im + (i + k + half) * stride;
        for (std::size_t j = 0; j < stride; ++j) {
          const double br = vr[j];
          const double bi = vi[j];
          const double xr = br * wr - bi * wi;
          const double xi = br * wi + bi * wr;
          const double ar = ur[j];
          const double ai = ui[j];
          ur[j] = ar + xr;
          ui[j] = ai + xi;
          vr[j] = ar - xr;
          vi[j] = ai - xi;
        }
      }
    }
  }
}

void scaleInPlaceImpl(double* x, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

// --- Complex pointwise ----------------------------------------------------

void cmulSplitImpl(double* aRe, double* aIm, const double* bRe,
                   const double* bIm, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double ar = aRe[i], ai = aIm[i];
    const double br = bRe[i], bi = bIm[i];
    aRe[i] = ar * br - ai * bi;
    aIm[i] = ar * bi + ai * br;
  }
}

void cmulInterleavedImpl(Complex* a, const Complex* b, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const auto* bd = reinterpret_cast<const double*>(b);
  for (std::size_t i = 0; i < 2 * n; i += 2) {
    const double ar = ad[i], ai = ad[i + 1];
    const double br = bd[i], bi = bd[i + 1];
    ad[i] = ar * br - ai * bi;
    ad[i + 1] = ar * bi + ai * br;
  }
}

void cmulConjInterleavedImpl(Complex* a, const Complex* b, std::size_t n) {
  auto* ad = reinterpret_cast<double*>(a);
  const auto* bd = reinterpret_cast<const double*>(b);
  for (std::size_t i = 0; i < 2 * n; i += 2) {
    const double ar = ad[i], ai = ad[i + 1];
    const double br = bd[i], bi = bd[i + 1];
    ad[i] = ar * br + ai * bi;
    ad[i + 1] = ai * br - ar * bi;
  }
}

void spectralDivideImpl(const Complex* num, const Complex* den, double eps,
                        Complex* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double nr = num[i].real(), ni = num[i].imag();
    const double dr = den[i].real(), di = den[i].imag();
    const double invMag = 1.0 / (dr * dr + di * di + eps);
    out[i] = Complex((nr * dr + ni * di) * invMag,
                     (ni * dr - nr * di) * invMag);
  }
}

double maxNormImpl(const Complex* x, std::size_t n) {
  double best = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = x[i].real(), im = x[i].imag();
    const double nrm = r * r + im * im;
    if (nrm > best) best = nrm;
  }
  return best;
}

// --- Reductions -----------------------------------------------------------

double dotProductImpl(const double* a, const double* b, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double sumSquaresImpl(const double* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

double sumImpl(const double* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

void pearsonAccumImpl(const double* a, const double* b, std::size_t n,
                      double ma, double mb, double out[3]) {
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  out[0] = sab;
  out[1] = saa;
  out[2] = sbb;
}

// --- Geometry visibility scan ---------------------------------------------

int visibilityCrossingsImpl(const double* nx, const double* ny,
                            const double* cdot, std::size_t n, double px,
                            double py, VisibilityCrossing* crossings,
                            int maxCrossings) {
  // Single streaming pass: carry g_{i} forward instead of materializing the
  // whole classifier array. The expression is spelled as explicit mul/sub so
  // it stays bitwise-identical to the AVX2 tier (which cannot contract
  // intrinsics into FMAs).
  const auto gAt = [&](std::size_t i) {
    return cdot ? cdot[i] - px * nx[i] - py * ny[i]
                : px * nx[i] + py * ny[i];
  };
  int found = 0;
  const double g0 = gAt(0);
  double gPrev = g0;
  for (std::size_t i = 0; i < n; ++i) {
    const double gNext = i + 1 == n ? g0 : gAt(i + 1);
    if ((gPrev < 0.0) != (gNext < 0.0)) {
      const double denom = gPrev - gNext;
      const double f =
          std::fabs(denom) > 1e-30 ? std::clamp(gPrev / denom, 0.0, 1.0) : 0.5;
      if (found < maxCrossings)
        crossings[found].u = static_cast<double>(i) + f;
      ++found;
    }
    gPrev = gNext;
  }
  return found;
}

}  // namespace

const KernelTable& scalarTable() {
  static const KernelTable t = {
      &ditStagesImpl,
      &difStagesImpl,
      &batchDitStagesImpl,
      &scaleInPlaceImpl,
      &cmulSplitImpl,
      &cmulInterleavedImpl,
      &cmulConjInterleavedImpl,
      &spectralDivideImpl,
      &maxNormImpl,
      &dotProductImpl,
      &sumSquaresImpl,
      &sumImpl,
      &pearsonAccumImpl,
      &visibilityCrossingsImpl,
  };
  return t;
}

}  // namespace uniq::dsp::kernels::detail
