// One-time ISA resolution and the public kernel entry points. Every public
// function is a tail-call through the resolved function-pointer table, so
// the per-call dispatch cost is a single indirect jump.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "dsp/kernels/kernel_table.h"
#include "dsp/kernels/kernels.h"
#include "obs/metrics.h"

namespace uniq::dsp::kernels {

namespace {

bool cpuHasAvx2Fma() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// True when the runtime environment allows the AVX2 tier: compiled in,
/// CPU capable, and not disabled via UNIQ_SIMD=scalar (or =off/0).
bool avx2Usable() {
  if (!avx2Compiled() || !cpuHasAvx2Fma()) return false;
  if (const char* env = std::getenv("UNIQ_SIMD")) {
    if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "OFF") == 0 || std::strcmp(env, "0") == 0)
      return false;
  }
  return true;
}

struct Dispatch {
  Isa isa;
  const detail::KernelTable* table;
};

Dispatch resolve(Isa isa) {
#if defined(UNIQ_HAVE_AVX2)
  if (isa == Isa::kAvx2) return {Isa::kAvx2, &detail::avx2Table()};
#endif
  (void)isa;
  return {Isa::kScalar, &detail::scalarTable()};
}

Dispatch& dispatch() {
  static Dispatch d = [] {
    const Isa isa = avx2Usable() ? Isa::kAvx2 : Isa::kScalar;
    obs::registry().gauge("kernels.avx2").set(isa == Isa::kAvx2 ? 1.0 : 0.0);
    obs::registry()
        .counter(std::string("kernels.dispatch.") + isaName(isa))
        .inc();
    return resolve(isa);
  }();
  return d;
}

}  // namespace

const char* isaName(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

Isa activeIsa() { return dispatch().isa; }

bool avx2Compiled() {
#if defined(UNIQ_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool setIsaOverride(Isa isa) {
  if (isa == Isa::kAvx2 && !(avx2Compiled() && cpuHasAvx2Fma())) return false;
  Dispatch& d = dispatch();
  d = resolve(isa);
  obs::registry().gauge("kernels.avx2").set(d.isa == Isa::kAvx2 ? 1.0 : 0.0);
  obs::registry()
      .counter(std::string("kernels.dispatch.") + isaName(d.isa))
      .inc();
  return true;
}

namespace detail {
const KernelTable& table() { return *dispatch().table; }
}  // namespace detail

void ditStages(double* re, double* im, std::size_t n, const double* stageTwRe,
               const double* stageTwIm) {
  detail::table().ditStages(re, im, n, stageTwRe, stageTwIm, false);
}

void ditStagesFrom4(double* re, double* im, std::size_t n,
                    const double* stageTwRe, const double* stageTwIm) {
  detail::table().ditStages(re, im, n, stageTwRe, stageTwIm, true);
}

void difStages(double* re, double* im, std::size_t n, const double* stageTwRe,
               const double* stageTwIm) {
  detail::table().difStages(re, im, n, stageTwRe, stageTwIm);
}

void batchDitStages(double* re, double* im, std::size_t stride, std::size_t n,
                    const double* stageTwRe, const double* stageTwIm) {
  detail::table().batchDitStages(re, im, stride, n, stageTwRe, stageTwIm);
}

void scaleInPlace(double* x, std::size_t n, double s) {
  detail::table().scaleInPlace(x, n, s);
}

void cmulSplit(double* aRe, double* aIm, const double* bRe, const double* bIm,
               std::size_t n) {
  detail::table().cmulSplit(aRe, aIm, bRe, bIm, n);
}

void cmulInterleaved(std::complex<double>* a, const std::complex<double>* b,
                     std::size_t n) {
  detail::table().cmulInterleaved(a, b, n);
}

void cmulConjInterleaved(std::complex<double>* a,
                         const std::complex<double>* b, std::size_t n) {
  detail::table().cmulConjInterleaved(a, b, n);
}

void spectralDivide(const std::complex<double>* num,
                    const std::complex<double>* den, double eps,
                    std::complex<double>* out, std::size_t n) {
  detail::table().spectralDivide(num, den, eps, out, n);
}

double maxNorm(const std::complex<double>* x, std::size_t n) {
  return detail::table().maxNorm(x, n);
}

double dotProduct(const double* a, const double* b, std::size_t n) {
  return detail::table().dotProduct(a, b, n);
}

double sumSquares(const double* x, std::size_t n) {
  return detail::table().sumSquares(x, n);
}

double sum(const double* x, std::size_t n) {
  return detail::table().sum(x, n);
}

void pearsonAccum(const double* a, const double* b, std::size_t n, double ma,
                  double mb, double out[3]) {
  detail::table().pearsonAccum(a, b, n, ma, mb, out);
}

int visibilityCrossings(const double* nx, const double* ny, const double* cdot,
                        std::size_t n, double px, double py,
                        VisibilityCrossing* crossings, int maxCrossings) {
  return detail::table().visibilityCrossings(nx, ny, cdot, n, px, py,
                                             crossings, maxCrossings);
}

}  // namespace uniq::dsp::kernels
