#pragma once

#include <optional>
#include <span>
#include <vector>

namespace uniq::dsp {

/// A detected tap (peak) in an impulse response.
struct Tap {
  double position = 0.0;   ///< sample index, sub-sample refined
  double amplitude = 0.0;  ///< |h| at the interpolated peak
};

/// Options controlling first-tap detection.
struct FirstTapOptions {
  /// A local max counts as a tap only if |h| >= threshold * max|h|.
  double relativeThreshold = 0.35;
  /// Ignore this many samples at the start (deconvolution edge artifacts).
  std::size_t skipSamples = 0;
};

/// Find the earliest significant peak of |h|. This is the "first tap" the
/// paper uses: the diffraction path arrives before all face/pinna
/// reflections and room echoes (Section 4.1, Figure 9). Returns nullopt
/// when the response has no sample above the threshold.
std::optional<Tap> findFirstTap(std::span<const double> h,
                                const FirstTapOptions& opts = {});

/// All local maxima of |h| above the relative threshold, sorted by position.
std::vector<Tap> findTaps(std::span<const double> h,
                          const FirstTapOptions& opts = {});

/// The largest-magnitude tap.
std::optional<Tap> findStrongestTap(std::span<const double> h,
                                    const FirstTapOptions& opts = {});

}  // namespace uniq::dsp
