#pragma once

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace uniq::dsp {

/// Linear frequency sweep (chirp) from f0 to f1 Hz over `samples` samples,
/// amplitude-tapered with a short Tukey fade to avoid clicks. This is the
/// probe signal UNIQ's phone plays during calibration.
std::vector<double> linearChirp(double f0, double f1, std::size_t samples,
                                double sampleRate, double amplitude = 1.0);

/// Exponential (logarithmic) sweep — constant energy per octave.
std::vector<double> exponentialChirp(double f0, double f1, std::size_t samples,
                                     double sampleRate,
                                     double amplitude = 1.0);

/// White Gaussian noise.
std::vector<double> whiteNoise(std::size_t samples, Pcg32& rng,
                               double amplitude = 1.0);

/// Speech-like signal: a pitch train (~120 Hz fundamental) with a few
/// formant resonances and a syllabic on/off envelope. Spectrally concentrated
/// at low frequencies — this is why the paper finds speech the hardest
/// "unknown source" class (Section 5.1, Figure 22).
std::vector<double> speechLike(std::size_t samples, double sampleRate,
                               Pcg32& rng);

/// Music-like signal: a sequence of note events, each a fundamental plus
/// harmonics with exponential decay envelopes.
std::vector<double> musicLike(std::size_t samples, double sampleRate,
                              Pcg32& rng);

/// Scale a signal in place so its RMS matches `targetRms`. No-op on silence.
void normalizeRms(std::vector<double>& signal, double targetRms);

/// RMS of a signal (0 for empty).
double rms(const std::vector<double>& signal);

/// Add white Gaussian noise at the given signal-to-noise ratio in dB,
/// measured against the current RMS of `signal`.
void addNoiseSnrDb(std::vector<double>& signal, double snrDb, Pcg32& rng);

}  // namespace uniq::dsp
