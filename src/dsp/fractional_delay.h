#pragma once

#include <span>
#include <vector>

namespace uniq::dsp {

/// Add a scaled, fractionally-delayed unit impulse into `buffer`:
/// buffer[t] += amplitude * sinc_window(t - delaySamples).
///
/// This is how the simulation substrate and the model-correction code place
/// acoustic taps at physically exact (non-integer) sample positions. The
/// kernel is a Blackman-windowed sinc of half-width `halfWidth` samples.
/// Taps whose kernel support falls outside the buffer are clipped.
void addFractionalTap(std::span<double> buffer, double delaySamples,
                      double amplitude, int halfWidth = 16);

/// Shift a signal by a fractional number of samples (positive = delay).
/// Output has the same length; content shifted beyond the ends is lost.
std::vector<double> fractionalShift(std::span<const double> signal,
                                    double shiftSamples, int halfWidth = 16);

}  // namespace uniq::dsp
