#include "dsp/spectrum.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "dsp/fft_plan.h"

namespace uniq::dsp {

std::vector<double> magnitudeSpectrum(std::span<const Complex> spectrum) {
  std::vector<double> m(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) m[i] = std::abs(spectrum[i]);
  return m;
}

std::vector<double> magnitudeSpectrumDb(std::span<const Complex> spectrum) {
  std::vector<double> m(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i)
    m[i] = amplitudeToDb(std::abs(spectrum[i]));
  return m;
}

double binFrequency(std::size_t bin, std::size_t fftSize, double sampleRate) {
  UNIQ_REQUIRE(fftSize > 0, "fftSize must be positive");
  return static_cast<double>(bin) * sampleRate / static_cast<double>(fftSize);
}

std::size_t frequencyToBin(double freqHz, std::size_t fftSize,
                           double sampleRate) {
  UNIQ_REQUIRE(sampleRate > 0, "sampleRate must be positive");
  const auto bin = static_cast<long>(
      std::lround(freqHz * static_cast<double>(fftSize) / sampleRate));
  return static_cast<std::size_t>(
      std::clamp(bin, 0L, static_cast<long>(fftSize) - 1));
}

double bandAverageMagnitude(std::span<const Complex> spectrum,
                            double sampleRate, double fLo, double fHi) {
  UNIQ_REQUIRE(fLo < fHi, "bad band");
  const std::size_t n = spectrum.size();
  const std::size_t bLo = frequencyToBin(fLo, n, sampleRate);
  const std::size_t bHi =
      std::min(frequencyToBin(fHi, n, sampleRate), n / 2);
  double acc = 0.0;
  std::size_t count = 0;
  for (std::size_t b = bLo; b <= bHi && b < n; ++b) {
    acc += std::abs(spectrum[b]);
    ++count;
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

std::vector<double> applyFrequencyResponse(std::span<const double> signal,
                                           std::span<const Complex> response,
                                           std::size_t tailSamples) {
  UNIQ_REQUIRE(!signal.empty(), "empty signal");
  UNIQ_REQUIRE(!response.empty(), "empty response");
  const std::size_t outLen = signal.size() + tailSamples;
  const std::size_t n = nextPowerOfTwo(outLen);
  const auto plan = fftPlan(n);
  std::vector<double> padded(n, 0.0);
  std::copy(signal.begin(), signal.end(), padded.begin());
  auto fx = plan->rfft(padded);
  // Map each FFT bin to the nearest bin of `response` (which is assumed to
  // cover the same sample-rate axis with its own resolution). Working on
  // the half spectrum keeps the output real by construction.
  const std::size_t rn = response.size();
  for (std::size_t k = 0; k <= n / 2; ++k) {
    const double frac =
        static_cast<double>(k) / static_cast<double>(n);  // 0 .. 0.5
    const auto rk = static_cast<std::size_t>(
        std::min<double>(std::lround(frac * static_cast<double>(rn)),
                         static_cast<double>(rn / 2)));
    fx[k] *= response[rk];
  }
  auto out = plan->irfft(fx);
  out.resize(outLen);
  return out;
}

}  // namespace uniq::dsp
