#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "dsp/fft.h"

namespace uniq::dsp {

/// Snapshot of the process-wide FFT plan cache counters (cheap atomics; see
/// fftStats()). `planHits`/`planMisses` count fftPlan() lookups; a miss
/// builds and caches a new plan. `transforms` counts every executed
/// transform (batch members included); `batchedTransforms` counts the
/// subset that ran through the batched entry points.
struct FftStats {
  std::uint64_t planHits = 0;
  std::uint64_t planMisses = 0;
  std::uint64_t transforms = 0;
  std::uint64_t batchedTransforms = 0;
  std::size_t cachedPlans = 0;
};

/// A precomputed transform plan for one FFT length.
///
/// Power-of-two plans hold packed per-stage twiddle tables in split re/im
/// (SoA) form; the butterfly cascades run through the runtime-dispatched
/// kernel layer (dsp/kernels/), so they execute as AVX2+FMA vector code on
/// capable CPUs and as portable scalar code elsewhere. Arbitrary lengths
/// use Bluestein's algorithm with a permutation-free convolution: a
/// decimation-in-frequency forward transform feeds a pointwise multiply
/// against the pre-permuted kernel spectrum, and a decimation-in-time
/// inverse transform restores natural order — no bit-reversal passes at
/// transform time.
///
/// Batched entry points (forwardBatch / rfftBatch / irfftBatch) transform
/// same-length buffers together in a batch-interleaved layout where every
/// butterfly is a full-width vector op with contiguous loads, amortizing
/// twiddle traffic across the batch. They are the fast path for template
/// banks (AoA spectra) and multi-channel extraction.
///
/// Plans are immutable after construction and safe to share across threads;
/// transform scratch comes from the per-thread arena (common/aligned.h).
/// Most callers should go through the process-wide cache (fftPlan()) instead
/// of constructing plans directly.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  bool isPow2() const { return pow2_; }

  /// In-place transforms; only valid for power-of-two plans.
  void forwardInPlace(std::span<Complex> data) const;
  void inverseInPlace(std::span<Complex> data) const;

  /// Out-of-place transforms for any plan length. `inverse` includes the
  /// 1/N scaling, matching dsp::fft().
  std::vector<Complex> forward(std::span<const Complex> input) const;
  std::vector<Complex> inverse(std::span<const Complex> input) const;

  /// Real-input fast path (power-of-two plans only): transforms length-n
  /// real input via one complex FFT of length n/2 and returns the
  /// non-redundant half spectrum X[0..n/2] (size n/2 + 1). The remaining
  /// bins are the conjugate mirror X[n-k] = conj(X[k]).
  std::vector<Complex> rfft(std::span<const double> input) const;

  /// Inverse of rfft(): takes the half spectrum (size n/2 + 1, assumed to
  /// describe a conjugate-symmetric full spectrum) and returns the length-n
  /// real signal, including the 1/N scaling.
  std::vector<double> irfft(std::span<const Complex> halfSpectrum) const;

  /// Batched forward transforms (power-of-two plans only): every input must
  /// have length n. Results match forward() per member to rounding; inputs
  /// are processed in cache-friendly interleaved chunks.
  std::vector<std::vector<Complex>> forwardBatch(
      std::span<const std::vector<Complex>> inputs) const;

  /// Batched rfft: every input is a length-n real signal; each output is
  /// the size n/2 + 1 half spectrum, matching rfft() per member.
  std::vector<std::vector<Complex>> rfftBatch(
      std::span<const std::vector<double>> inputs) const;

  /// Batched irfft: every input is a size n/2 + 1 half spectrum; each
  /// output is the length-n real signal, matching irfft() per member.
  std::vector<std::vector<double>> irfftBatch(
      std::span<const std::vector<Complex>> halfSpectra) const;

 private:
  void transformPow2(std::span<Complex> data, bool inverse) const;
  /// Deinterleave `input` into split re/im lanes in bit-reversed order with
  /// the len == 2 butterfly fused, ready for the ditStagesFrom4 kernel.
  void gatherSplit(const Complex* input, double* re, double* im) const;
  std::vector<Complex> forwardBluestein(std::span<const Complex> input) const;

  /// Packed single-transform stage-table base pointers (stage for `len`
  /// starts at offset len/2 - 2; see dsp/kernels/kernels.h). Null for
  /// plans of length < 4, where no multiplying stage exists.
  const double* stageTwRe() const {
    return twRe_.size() > 1 ? twRe_.data() + 1 : nullptr;
  }
  const double* stageTwIm(bool inverse) const {
    const auto& t = inverse ? invTwIm_ : twIm_;
    return t.size() > 1 ? t.data() + 1 : nullptr;
  }

  std::size_t n_;
  bool pow2_;

  // Power-of-two tables.
  std::vector<std::uint32_t> bitrev_;
  /// Packed per-stage twiddles in batch layout (stages len = 2..n, stage
  /// offset len/2 - 1, n - 1 entries): exp(-2*pi*i*k/len) split into re and
  /// im lanes. The single-transform kernels use the same storage shifted by
  /// one entry (stageTwRe/stageTwIm); the rfft split twiddles are the
  /// len == n stage slice at offset n/2 - 1. `invTwIm_` is the negated im
  /// lane (conjugate tables) for inverse transforms.
  common::AlignedBuffer<double> twRe_;
  common::AlignedBuffer<double> twIm_;
  common::AlignedBuffer<double> invTwIm_;
  std::shared_ptr<const FftPlan> halfPlan_;  ///< length n/2, for rfft/irfft

  // Bluestein tables (non power of two).
  std::size_t m_ = 0;  ///< inner convolution length (pow2)
  common::AlignedBuffer<double> chirpRe_;  ///< exp(-i*pi*k^2/n), split
  common::AlignedBuffer<double> chirpIm_;
  /// Spectrum of the chirp kernel in the convolution plan's bit-reversed
  /// order (DIF output order), so the pointwise multiply needs no
  /// permutation.
  common::AlignedBuffer<double> kernRe_;
  common::AlignedBuffer<double> kernIm_;
  std::shared_ptr<const FftPlan> convPlan_;  ///< length m_
};

/// Process-wide, mutex-guarded plan cache. Returns a shared immutable plan
/// for length n, building it on first use. Thread-safe.
std::shared_ptr<const FftPlan> fftPlan(std::size_t n);

/// Current plan-cache and transform counters (observability; logged by the
/// CLI).
FftStats fftStats();

/// Reset the hit/miss/transform counters (the cached plans themselves are
/// kept).
void resetFftStats();

/// Convenience wrappers over the plan cache. `n = input.size()` must be a
/// power of two; the half spectrum has size n/2 + 1.
std::vector<Complex> rfft(std::span<const double> input);

/// Inverse of rfft() for a full length of n (power of two,
/// halfSpectrum.size() == n/2 + 1).
std::vector<double> irfft(std::span<const Complex> halfSpectrum,
                          std::size_t n);

}  // namespace uniq::dsp
