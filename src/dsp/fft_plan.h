#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.h"

namespace uniq::dsp {

/// Snapshot of the process-wide FFT plan cache counters (cheap atomics; see
/// fftStats()). `planHits`/`planMisses` count fftPlan() lookups; a miss
/// builds and caches a new plan.
struct FftStats {
  std::uint64_t planHits = 0;
  std::uint64_t planMisses = 0;
  std::size_t cachedPlans = 0;
};

/// A precomputed transform plan for one FFT length.
///
/// Power-of-two lengths precompute the bit-reversal permutation and the
/// twiddle-factor table once, so repeated transforms stop paying the
/// trigonometric setup that dominated the seed implementation. Arbitrary
/// lengths precompute the Bluestein chirp and the spectrum of the chirp
/// convolution kernel, reducing every subsequent transform from three
/// power-of-two FFTs (plus chirp setup) to two table-driven ones.
///
/// Plans are immutable after construction and safe to share across threads.
/// Most callers should go through the process-wide cache (fftPlan()) instead
/// of constructing plans directly.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  bool isPow2() const { return pow2_; }

  /// In-place transforms; only valid for power-of-two plans.
  void forwardInPlace(std::span<Complex> data) const;
  void inverseInPlace(std::span<Complex> data) const;

  /// Out-of-place transforms for any plan length. `inverse` includes the
  /// 1/N scaling, matching dsp::fft().
  std::vector<Complex> forward(std::span<const Complex> input) const;
  std::vector<Complex> inverse(std::span<const Complex> input) const;

  /// Real-input fast path (power-of-two plans only): transforms length-n
  /// real input via one complex FFT of length n/2 and returns the
  /// non-redundant half spectrum X[0..n/2] (size n/2 + 1). The remaining
  /// bins are the conjugate mirror X[n-k] = conj(X[k]).
  std::vector<Complex> rfft(std::span<const double> input) const;

  /// Inverse of rfft(): takes the half spectrum (size n/2 + 1, assumed to
  /// describe a conjugate-symmetric full spectrum) and returns the length-n
  /// real signal, including the 1/N scaling.
  std::vector<double> irfft(std::span<const Complex> halfSpectrum) const;

 private:
  void transformPow2(std::span<Complex> data, bool inverse) const;
  /// Butterfly stages over already bit-reverse-permuted data. When
  /// `firstStageDone` the caller has fused the multiply-free len == 2 stage
  /// into its permutation pass and the stages start at len == 4.
  void stagesPow2(std::span<Complex> data, bool inverse,
                  bool firstStageDone) const;
  /// Copies `input` into `out` in bit-reversed order with the len == 2
  /// butterfly stage fused in, so stagesPow2(..., true) can follow without a
  /// separate permutation pass.
  void gatherStage2(std::span<const Complex> input,
                    std::span<Complex> out) const;
  std::vector<Complex> forwardBluestein(std::span<const Complex> input) const;

  std::size_t n_;
  bool pow2_;

  // Power-of-two tables.
  std::vector<std::uint32_t> bitrev_;
  /// Interleaved (i, j) index pairs with i < bitrev(i) == j: the in-place
  /// bit-reversal permutation as a branch-free swap list.
  std::vector<std::uint32_t> swapPairs_;
  std::vector<Complex> twiddles_;  ///< exp(-2*pi*i*k/n), k < n/2
  std::vector<Complex> inverseTwiddles_;  ///< conjugates, for the inverse
  std::shared_ptr<const FftPlan> halfPlan_;  ///< length n/2, for rfft/irfft

  // Bluestein tables (non power of two).
  std::size_t m_ = 0;                  ///< inner convolution length (pow2)
  std::vector<Complex> chirp_;         ///< exp(-i*pi*k^2/n)
  std::vector<Complex> kernelSpectrum_;  ///< FFT_m of the chirp kernel
  std::shared_ptr<const FftPlan> convPlan_;  ///< length m_
};

/// Process-wide, mutex-guarded plan cache. Returns a shared immutable plan
/// for length n, building it on first use. Thread-safe.
std::shared_ptr<const FftPlan> fftPlan(std::size_t n);

/// Current plan-cache counters (observability; logged by the CLI).
FftStats fftStats();

/// Reset the hit/miss counters (the cached plans themselves are kept).
void resetFftStats();

/// Convenience wrappers over the plan cache. `n = input.size()` must be a
/// power of two; the half spectrum has size n/2 + 1.
std::vector<Complex> rfft(std::span<const double> input);

/// Inverse of rfft() for a full length of n (power of two,
/// halfSpectrum.size() == n/2 + 1).
std::vector<double> irfft(std::span<const Complex> halfSpectrum,
                          std::size_t n);

}  // namespace uniq::dsp
