#pragma once

#include <span>
#include <vector>

#include "dsp/fft.h"

namespace uniq::dsp {

/// Options for Tikhonov-regularized frequency-domain deconvolution.
struct DeconvolutionOptions {
  /// Regularization strength as a fraction of the peak source power.
  /// H(f) = Y(f) * conj(X(f)) / (|X(f)|^2 + eps * max|X|^2).
  double relativeRegularization = 1e-3;
  /// Length of the estimated impulse response to keep (0 = full length).
  std::size_t responseLength = 0;
};

/// Estimate the channel impulse response h from a recording y ≈ x * h.
///
/// This is the "channel estimation" step the paper performs by
/// "deconvolving the received signal with the known source signal"
/// (Section 4.1, Figure 9). Regularization keeps the division stable in
/// bands where the probe has little energy.
std::vector<double> deconvolve(std::span<const double> received,
                               std::span<const double> source,
                               const DeconvolutionOptions& opts = {});

/// Frequency-domain division of two spectra with Tikhonov regularization:
/// out(f) = num(f) * conj(den(f)) / (|den(f)|^2 + eps * max|den|^2).
std::vector<Complex> regularizedSpectralDivide(
    std::span<const Complex> numerator, std::span<const Complex> denominator,
    double relativeRegularization);

}  // namespace uniq::dsp
