#include "dsp/peak_picking.h"

#include <algorithm>
#include <cmath>

namespace uniq::dsp {

namespace {

/// Quadratic refinement of a discrete peak of |h|.
Tap refine(std::span<const double> mag, std::size_t i) {
  Tap tap;
  if (i > 0 && i + 1 < mag.size()) {
    const double ym1 = mag[i - 1];
    const double y0 = mag[i];
    const double yp1 = mag[i + 1];
    const double denom = ym1 - 2 * y0 + yp1;
    double d = 0.0;
    if (std::fabs(denom) > 1e-30) d = 0.5 * (ym1 - yp1) / denom;
    d = std::clamp(d, -0.5, 0.5);
    tap.position = static_cast<double>(i) + d;
    tap.amplitude = y0 - 0.25 * (ym1 - yp1) * d;
  } else {
    tap.position = static_cast<double>(i);
    tap.amplitude = mag[i];
  }
  return tap;
}

std::vector<double> magnitude(std::span<const double> h) {
  std::vector<double> m(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) m[i] = std::fabs(h[i]);
  return m;
}

}  // namespace

std::vector<Tap> findTaps(std::span<const double> h,
                          const FirstTapOptions& opts) {
  std::vector<Tap> taps;
  if (h.size() < 3) return taps;
  const auto mag = magnitude(h);
  const std::size_t start = std::min(opts.skipSamples, mag.size());
  double peak = 0.0;
  for (std::size_t i = start; i < mag.size(); ++i)
    peak = std::max(peak, mag[i]);
  if (peak <= 0.0) return taps;
  const double threshold = opts.relativeThreshold * peak;
  for (std::size_t i = std::max<std::size_t>(start, 1); i + 1 < mag.size();
       ++i) {
    if (mag[i] >= threshold && mag[i] >= mag[i - 1] && mag[i] > mag[i + 1]) {
      taps.push_back(refine(mag, i));
    }
  }
  return taps;
}

std::optional<Tap> findFirstTap(std::span<const double> h,
                                const FirstTapOptions& opts) {
  auto taps = findTaps(h, opts);
  if (taps.empty()) return std::nullopt;
  return taps.front();
}

std::optional<Tap> findStrongestTap(std::span<const double> h,
                                    const FirstTapOptions& opts) {
  auto taps = findTaps(h, opts);
  if (taps.empty()) return std::nullopt;
  return *std::max_element(taps.begin(), taps.end(),
                           [](const Tap& a, const Tap& b) {
                             return a.amplitude < b.amplitude;
                           });
}

}  // namespace uniq::dsp
