#include "dsp/convolution.h"

#include <algorithm>

#include "common/error.h"
#include "dsp/fft.h"

namespace uniq::dsp {

std::vector<double> convolveDirect(std::span<const double> a,
                                   std::span<const double> b) {
  UNIQ_REQUIRE(!a.empty() && !b.empty(), "convolution of empty signal");
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += ai * b[j];
  }
  return out;
}

std::vector<double> convolveFft(std::span<const double> a,
                                std::span<const double> b) {
  UNIQ_REQUIRE(!a.empty() && !b.empty(), "convolution of empty signal");
  const std::size_t outLen = a.size() + b.size() - 1;
  const std::size_t n = nextPowerOfTwo(outLen);
  std::vector<Complex> fa(n, Complex(0, 0));
  std::vector<Complex> fb(n, Complex(0, 0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0);
  fftPow2InPlace(fa, false);
  fftPow2InPlace(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fftPow2InPlace(fa, true);
  std::vector<double> out(outLen);
  for (std::size_t i = 0; i < outLen; ++i) out[i] = fa[i].real();
  return out;
}

std::vector<double> convolveOverlapAdd(std::span<const double> signal,
                                       std::span<const double> kernel,
                                       std::size_t blockSize) {
  UNIQ_REQUIRE(!signal.empty() && !kernel.empty(),
               "convolution of empty signal");
  UNIQ_REQUIRE(blockSize >= 1, "blockSize must be >= 1");
  const std::size_t outLen = signal.size() + kernel.size() - 1;
  const std::size_t fftLen = nextPowerOfTwo(blockSize + kernel.size() - 1);

  // Pre-transform the kernel once.
  std::vector<Complex> fk(fftLen, Complex(0, 0));
  for (std::size_t i = 0; i < kernel.size(); ++i) fk[i] = Complex(kernel[i], 0);
  fftPow2InPlace(fk, false);

  std::vector<double> out(outLen, 0.0);
  std::vector<Complex> block(fftLen);
  for (std::size_t start = 0; start < signal.size(); start += blockSize) {
    const std::size_t len = std::min(blockSize, signal.size() - start);
    std::fill(block.begin(), block.end(), Complex(0, 0));
    for (std::size_t i = 0; i < len; ++i)
      block[i] = Complex(signal[start + i], 0);
    fftPow2InPlace(block, false);
    for (std::size_t i = 0; i < fftLen; ++i) block[i] *= fk[i];
    fftPow2InPlace(block, true);
    const std::size_t tail = std::min(len + kernel.size() - 1, outLen - start);
    for (std::size_t i = 0; i < tail; ++i)
      out[start + i] += block[i].real();
  }
  return out;
}

std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b) {
  const std::size_t shorter = std::min(a.size(), b.size());
  if (shorter <= 32) return convolveDirect(a, b);
  return convolveFft(a, b);
}

}  // namespace uniq::dsp
