#include "dsp/convolution.h"

#include <algorithm>

#include "common/error.h"
#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/kernels/kernels.h"

namespace uniq::dsp {

std::vector<double> convolveDirect(std::span<const double> a,
                                   std::span<const double> b) {
  UNIQ_REQUIRE(!a.empty() && !b.empty(), "convolution of empty signal");
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += ai * b[j];
  }
  return out;
}

std::vector<double> convolveFft(std::span<const double> a,
                                std::span<const double> b) {
  UNIQ_REQUIRE(!a.empty() && !b.empty(), "convolution of empty signal");
  const std::size_t outLen = a.size() + b.size() - 1;
  const std::size_t n = nextPowerOfTwo(outLen);
  const auto plan = fftPlan(n);
  // Both inputs are real: two half-spectrum transforms and one inverse
  // replace the three full complex FFTs of the naive approach.
  std::vector<double> pa(n, 0.0);
  std::vector<double> pb(n, 0.0);
  std::copy(a.begin(), a.end(), pa.begin());
  std::copy(b.begin(), b.end(), pb.begin());
  auto fa = plan->rfft(pa);
  const auto fb = plan->rfft(pb);
  kernels::cmulInterleaved(fa.data(), fb.data(), fa.size());
  auto full = plan->irfft(fa);
  full.resize(outLen);
  return full;
}

std::vector<double> convolveOverlapAdd(std::span<const double> signal,
                                       std::span<const double> kernel,
                                       std::size_t blockSize) {
  UNIQ_REQUIRE(!signal.empty() && !kernel.empty(),
               "convolution of empty signal");
  UNIQ_REQUIRE(blockSize >= 1, "blockSize must be >= 1");
  const std::size_t outLen = signal.size() + kernel.size() - 1;
  const std::size_t fftLen = nextPowerOfTwo(blockSize + kernel.size() - 1);
  const auto plan = fftPlan(fftLen);

  // Pre-transform the kernel once.
  std::vector<double> pk(fftLen, 0.0);
  std::copy(kernel.begin(), kernel.end(), pk.begin());
  const auto fk = plan->rfft(pk);

  std::vector<double> out(outLen, 0.0);
  std::vector<double> block(fftLen);
  for (std::size_t start = 0; start < signal.size(); start += blockSize) {
    const std::size_t len = std::min(blockSize, signal.size() - start);
    std::fill(block.begin(), block.end(), 0.0);
    std::copy(signal.begin() + static_cast<std::ptrdiff_t>(start),
              signal.begin() + static_cast<std::ptrdiff_t>(start + len),
              block.begin());
    auto fb = plan->rfft(block);
    kernels::cmulInterleaved(fb.data(), fk.data(), fb.size());
    const auto time = plan->irfft(fb);
    const std::size_t tail = std::min(len + kernel.size() - 1, outLen - start);
    for (std::size_t i = 0; i < tail; ++i) out[start + i] += time[i];
  }
  return out;
}

std::vector<double> convolve(std::span<const double> a,
                             std::span<const double> b) {
  const std::size_t shorter = std::min(a.size(), b.size());
  if (shorter <= kDirectConvolveCutoff) return convolveDirect(a, b);
  return convolveFft(a, b);
}

}  // namespace uniq::dsp
