#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace uniq::dsp {

/// Window functions used by spectral analysis and tap shaping.
enum class WindowType { kRectangular, kHann, kHamming, kBlackman, kTukey };

/// Generate a window of length n. `tukeyAlpha` only matters for kTukey
/// (fraction of the window inside the cosine tapers, in [0,1]).
std::vector<double> makeWindow(WindowType type, std::size_t n,
                               double tukeyAlpha = 0.5);

/// Multiply `signal` by `window` element-wise (sizes must match).
void applyWindow(std::span<double> signal, std::span<const double> window);

}  // namespace uniq::dsp
