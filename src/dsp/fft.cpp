#include "dsp/fft.h"

#include <cmath>
#include <limits>

#include "common/constants.h"
#include "common/error.h"
#include "dsp/fft_plan.h"

namespace uniq::dsp {

std::size_t nextPowerOfTwo(std::size_t n) {
  constexpr std::size_t kMaxPow2 =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  UNIQ_REQUIRE(n <= kMaxPow2,
               "nextPowerOfTwo: n exceeds the largest size_t power of two");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool isPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fftPow2InPlace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  UNIQ_REQUIRE(isPowerOfTwo(n), "fftPow2InPlace needs a power-of-two size");
  const auto plan = fftPlan(n);
  if (inverse) {
    plan->inverseInPlace(data);
  } else {
    plan->forwardInPlace(data);
  }
}

void fftPow2ReferenceInPlace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  UNIQ_REQUIRE(isPowerOfTwo(n),
               "fftPow2ReferenceInPlace needs a power-of-two size");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

std::vector<Complex> fft(std::span<const Complex> input, bool inverse) {
  UNIQ_REQUIRE(!input.empty(), "fft of empty signal");
  const auto plan = fftPlan(input.size());
  return inverse ? plan->inverse(input) : plan->forward(input);
}

std::vector<Complex> fftReal(std::span<const double> input) {
  UNIQ_REQUIRE(!input.empty(), "fft of empty signal");
  const std::size_t n = input.size();
  if (isPowerOfTwo(n)) {
    // Real fast path: transform the half spectrum, mirror the rest.
    const auto half = fftPlan(n)->rfft(input);
    std::vector<Complex> out(n);
    for (std::size_t k = 0; k < half.size(); ++k) out[k] = half[k];
    for (std::size_t k = 1; k < n - n / 2; ++k)
      out[n - k] = std::conj(half[k]);
    return out;
  }
  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = Complex(input[i], 0);
  return fft(data, false);
}

std::vector<double> ifftReal(std::span<const Complex> spectrum) {
  auto time = fft(spectrum, true);
  std::vector<double> out(time.size());
  for (std::size_t i = 0; i < time.size(); ++i) out[i] = time[i].real();
  return out;
}

}  // namespace uniq::dsp
