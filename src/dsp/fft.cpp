#include "dsp/fft.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace uniq::dsp {

std::size_t nextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool isPowerOfTwo(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fftPow2InPlace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  UNIQ_REQUIRE(isPowerOfTwo(n), "fftPow2InPlace needs a power-of-two size");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= scale;
  }
}

namespace {

/// Bluestein chirp-z transform for arbitrary-length DFTs. Expresses the DFT
/// as a convolution, evaluated with a power-of-two FFT.
std::vector<Complex> bluestein(std::span<const Complex> input, bool inverse) {
  const std::size_t n = input.size();
  const std::size_t m = nextPowerOfTwo(2 * n + 1);
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp factors: w_k = exp(sign * i * pi * k^2 / n).
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const double kk =
        static_cast<double>((static_cast<unsigned long long>(k) * k) %
                            (2 * n));
    const double phase = sign * kPi * kk / static_cast<double>(n);
    chirp[k] = Complex(std::cos(phase), std::sin(phase));
  }

  std::vector<Complex> a(m, Complex(0, 0));
  std::vector<Complex> b(m, Complex(0, 0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = std::conj(chirp[k]);
    b[m - k] = b[k];
  }

  fftPow2InPlace(a, false);
  fftPow2InPlace(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fftPow2InPlace(a, true);

  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& x : out) x *= scale;
  }
  return out;
}

}  // namespace

std::vector<Complex> fft(std::span<const Complex> input, bool inverse) {
  UNIQ_REQUIRE(!input.empty(), "fft of empty signal");
  if (isPowerOfTwo(input.size())) {
    std::vector<Complex> data(input.begin(), input.end());
    fftPow2InPlace(data, inverse);
    return data;
  }
  return bluestein(input, inverse);
}

std::vector<Complex> fftReal(std::span<const double> input) {
  std::vector<Complex> data(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) data[i] = Complex(input[i], 0);
  return fft(data, false);
}

std::vector<double> ifftReal(std::span<const Complex> spectrum) {
  auto time = fft(spectrum, true);
  std::vector<double> out(time.size());
  for (std::size_t i = 0; i < time.size(); ++i) out[i] = time[i].real();
  return out;
}

}  // namespace uniq::dsp
