#pragma once

#include <complex>
#include <span>
#include <vector>

namespace uniq::dsp {

using Complex = std::complex<double>;

/// Smallest power of two >= n (n >= 1). Throws uniq::InvalidArgument when n
/// exceeds the largest representable power of two instead of looping or
/// wrapping.
std::size_t nextPowerOfTwo(std::size_t n);

/// True when n is a power of two (n >= 1).
bool isPowerOfTwo(std::size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a power
/// of two. `inverse` applies the conjugate transform and scales by 1/N, so
/// fft(ifft(x)) == x. Uses the process-wide plan cache (dsp::fftPlan) for
/// precomputed bit-reversal and twiddle tables.
void fftPow2InPlace(std::span<Complex> data, bool inverse);

/// The seed's table-free radix-2 FFT, which recomputes twiddles on every
/// call. Kept as the independent reference the plan-cache tests and the
/// before/after perf benchmarks compare against; production code should use
/// fftPow2InPlace.
void fftPow2ReferenceInPlace(std::span<Complex> data, bool inverse);

/// FFT of arbitrary length (Bluestein's chirp-z algorithm for non powers of
/// two). Returns a new vector; `inverse` includes the 1/N scaling.
std::vector<Complex> fft(std::span<const Complex> input, bool inverse = false);

/// Forward FFT of a real signal. Returns the full complex spectrum of the
/// same length as the input (conjugate-symmetric for real input).
std::vector<Complex> fftReal(std::span<const double> input);

/// Inverse FFT returning only the real part (imaginary residue discarded;
/// callers feeding conjugate-symmetric spectra lose nothing).
std::vector<double> ifftReal(std::span<const Complex> spectrum);

}  // namespace uniq::dsp
