#pragma once

#include <span>
#include <vector>

namespace uniq::dsp {

/// Resample by an arbitrary positive ratio (outputRate / inputRate) using
/// windowed-sinc interpolation. When downsampling, the kernel is widened to
/// act as the anti-alias filter.
std::vector<double> resample(std::span<const double> input, double inputRate,
                             double outputRate, int halfWidth = 16);

/// Upsample a signal by an integer factor (zero-stuff + windowed sinc).
std::vector<double> upsampleInteger(std::span<const double> input, int factor,
                                    int halfWidth = 16);

}  // namespace uniq::dsp
