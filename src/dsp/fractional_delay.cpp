#include "dsp/fractional_delay.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"

namespace uniq::dsp {

namespace {

/// Blackman-windowed sinc kernel value at offset x (samples), half-width w.
double windowedSinc(double x, int w) {
  if (std::fabs(x) >= w) return 0.0;
  double s;
  if (std::fabs(x) < 1e-12) {
    s = 1.0;
  } else {
    const double px = kPi * x;
    s = std::sin(px) / px;
  }
  // Blackman window over [-w, w].
  const double u = (x + w) / (2.0 * w);  // in [0,1]
  const double win =
      0.42 - 0.5 * std::cos(kTwoPi * u) + 0.08 * std::cos(2 * kTwoPi * u);
  return s * win;
}

}  // namespace

void addFractionalTap(std::span<double> buffer, double delaySamples,
                      double amplitude, int halfWidth) {
  UNIQ_REQUIRE(halfWidth >= 1, "halfWidth must be >= 1");
  if (buffer.empty() || amplitude == 0.0) return;
  const long lo = static_cast<long>(std::ceil(delaySamples)) - halfWidth;
  const long hi = static_cast<long>(std::floor(delaySamples)) + halfWidth;
  const long n = static_cast<long>(buffer.size());
  for (long t = std::max(lo, 0L); t <= std::min(hi, n - 1); ++t) {
    buffer[static_cast<std::size_t>(t)] +=
        amplitude * windowedSinc(static_cast<double>(t) - delaySamples,
                                 halfWidth);
  }
}

std::vector<double> fractionalShift(std::span<const double> signal,
                                    double shiftSamples, int halfWidth) {
  std::vector<double> out(signal.size(), 0.0);
  // out[t] = signal(t - shift): interpolate the input at non-integer points.
  for (std::size_t t = 0; t < out.size(); ++t) {
    const double srcPos = static_cast<double>(t) - shiftSamples;
    const long lo = static_cast<long>(std::ceil(srcPos)) - halfWidth;
    const long hi = static_cast<long>(std::floor(srcPos)) + halfWidth;
    double acc = 0.0;
    for (long k = std::max(lo, 0L);
         k <= std::min(hi, static_cast<long>(signal.size()) - 1); ++k) {
      acc += signal[static_cast<std::size_t>(k)] *
             windowedSinc(srcPos - static_cast<double>(k), halfWidth);
    }
    out[t] = acc;
  }
  return out;
}

}  // namespace uniq::dsp
