#include "serve/calibration_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <thread>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/streaming_session.h"

namespace uniq::serve {

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Gauge& queueDepthGauge() {
  static obs::Gauge& g = obs::registry().gauge("serve.queue.depth");
  return g;
}
obs::Gauge& queueMaxDepthGauge() {
  static obs::Gauge& g = obs::registry().gauge("serve.queue.max_depth");
  return g;
}
obs::Gauge& runningGauge() {
  static obs::Gauge& g = obs::registry().gauge("serve.jobs.running");
  return g;
}
obs::Counter& rejectedByShardCounter() {
  static obs::Counter& c =
      obs::registry().counter("serve.jobs.rejected_by_shard");
  return c;
}
obs::Counter& stateCounter(JobState state) {
  static obs::Counter& submitted =
      obs::registry().counter("serve.jobs.submitted");
  static obs::Counter& done = obs::registry().counter("serve.jobs.done");
  static obs::Counter& cancelled =
      obs::registry().counter("serve.jobs.cancelled");
  static obs::Counter& expired =
      obs::registry().counter("serve.jobs.expired");
  static obs::Counter& rejected =
      obs::registry().counter("serve.jobs.rejected");
  switch (state) {
    case JobState::kDone:
      return done;
    case JobState::kCancelled:
      return cancelled;
    case JobState::kExpired:
      return expired;
    case JobState::kRejected:
      return rejected;
    default:
      return submitted;
  }
}
const obs::HistogramOptions kLatencyBins{0.1, 2.0, 24};

std::size_t resolveWorkers(std::size_t requested) {
  if (requested > 0) return requested;
  // Default sizing mirrors common::globalPool(): UNIQ_NUM_THREADS when set,
  // else hardware concurrency, clamped to [1, 16]. Unlike the global pool
  // the service keeps the full count — its workers run whole jobs while the
  // submitting thread waits, so there is no caller to subtract.
  std::size_t n = 0;
  if (const char* env = std::getenv("UNIQ_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) n = static_cast<std::size_t>(parsed);
  }
  if (n == 0) n = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  return std::clamp<std::size_t>(n, 1, 16);
}

bool isPowerOfTwo(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

std::size_t log2PowerOfTwo(std::size_t n) {
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

/// Internal job record. State transitions happen under the owning shard's
/// mutex; the abort token is the only cross-thread channel used mid-run.
struct CalibrationService::Job {
  std::uint64_t id = 0;
  std::size_t shardIdx = 0;
  std::string userId;
  std::shared_ptr<const sim::CalibrationCapture> capture;
  JobOptions opts;
  obs::TraceId traceId = 0;  ///< job's trace context (allocated at submit)
  core::RunAbortToken token;

  JobState state = JobState::kQueued;
  core::PipelineStatus status = core::PipelineStatus::kFailed;
  std::shared_ptr<const core::HrtfTable> table;
  obs::RunReport report;
  std::vector<obs::Diagnostic> diagnostics;
  std::string error;

  double submitMs = 0.0;
  double startMs = 0.0;
  double queueMs = 0.0;
  double runMs = 0.0;

  bool terminal() const {
    return state != JobState::kQueued && state != JobState::kRunning;
  }

  JobResult result() const {
    JobResult r;
    r.id = id;
    r.userId = userId;
    r.traceId = traceId;
    r.state = state;
    r.status = status;
    r.table = table;
    r.report = report;
    r.diagnostics = diagnostics;
    r.queueMs = queueMs;
    r.runMs = runMs;
    r.error = error;
    return r;
  }
};

/// One independent submission lane: its own lock, FIFO, job ledger, and
/// instruments. Only the worker pool is shared across shards.
struct CalibrationService::Shard {
  mutable std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::shared_ptr<Job>> queued;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs;
  std::size_t running = 0;
  std::size_t drainersInFlight = 0;
  bool shutdown = false;
  obs::Gauge* depthGauge = nullptr;     ///< serve.shard.N.queue_depth
  obs::Counter* rejected = nullptr;     ///< serve.shard.N.rejected
};

CalibrationService::CalibrationService(Options opts)
    : opts_(std::move(opts)),
      cache_(TableCacheOptions{
          std::max<std::size_t>(opts_.cacheCapacity, 1), opts_.persistDir,
          opts_.cacheShards == 0
              ? (isPowerOfTwo(opts_.shards) ? opts_.shards : 1)
              : opts_.cacheShards,
          true}),
      pipeline_(opts_.pipeline),
      pool_(resolveWorkers(opts_.workers)) {
  UNIQ_REQUIRE(isPowerOfTwo(opts_.shards),
               "service shard count must be a power of two");
  shardBits_ = log2PowerOfTwo(opts_.shards);
  maxQueuedPerShard_ =
      std::max<std::size_t>(1, opts_.maxQueued / opts_.shards);
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    const std::string prefix = "serve.shard." + std::to_string(i);
    shard->depthGauge = &obs::registry().gauge(prefix + ".queue_depth");
    shard->rejected = &obs::registry().counter(prefix + ".rejected");
    shards_.push_back(std::move(shard));
  }
  obs::registry()
      .gauge("serve.workers")
      .set(static_cast<double>(pool_.threadCount()));
  obs::registry()
      .gauge("serve.shards")
      .set(static_cast<double>(shards_.size()));
  rejectedByShardCounter();  // register at 0 so exports always include it
}

CalibrationService::~CalibrationService() {
  // Phase 1: close every shard and cancel its waiting jobs; running jobs
  // finish on their own (their capture and token live in the shared Job
  // record). Phase 2: wait for each shard's workers to come home.
  for (auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.shutdown = true;
    for (const auto& job : shard.queued) {
      job->token.requestCancel();
      job->state = JobState::kCancelled;
      job->queueMs = nowMs() - job->submitMs;
      stateCounter(JobState::kCancelled).inc();
      queueDepthGauge().add(-1.0);
      shard.depthGauge->add(-1.0);
      queuedTotal_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.queued.clear();
    shard.cv.notify_all();
  }
  for (auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait(
        lock, [&] { return shard.running == 0 && shard.drainersInFlight == 0; });
  }
}

CalibrationService::Shard& CalibrationService::shardForUser(
    const std::string& userId) {
  // Power-of-two count makes the modulo a mask; the same hash the table
  // cache uses, so a user's jobs and tables land on aligned shards.
  return *shards_[std::hash<std::string>{}(userId) & (shards_.size() - 1)];
}

CalibrationService::Shard& CalibrationService::shardForId(std::uint64_t id) {
  // Job ids carry their shard in the low bits: id = (seq << bits) | shard.
  return *shards_[id & (shards_.size() - 1)];
}

std::uint64_t CalibrationService::submit(
    std::string userId, std::shared_ptr<const sim::CalibrationCapture> capture,
    JobOptions jobOpts) {
  UNIQ_REQUIRE(capture != nullptr, "null capture");
  const std::size_t shardIdx =
      std::hash<std::string>{}(userId) & (shards_.size() - 1);
  Shard& shard = *shards_[shardIdx];
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.shutdown || shard.queued.size() >= maxQueuedPerShard_) {
    stateCounter(JobState::kRejected).inc();
    shard.rejected->inc();
    rejectedByShardCounter().inc();
    return kInvalidJobId;
  }

  auto job = std::make_shared<Job>();
  // Global sequence in the high bits, shard in the low bits: ids stay
  // unique and self-routing, and with shards=1 (bits=0) they are exactly
  // the pre-sharding 1,2,3,... sequence.
  job->id = (nextSeq_.fetch_add(1, std::memory_order_relaxed) << shardBits_) |
            static_cast<std::uint64_t>(shardIdx);
  job->shardIdx = shardIdx;
  job->userId = std::move(userId);
  job->capture = std::move(capture);
  job->opts = jobOpts;
  // Every job gets its own trace context at admission; the worker installs
  // it around the run so all spans (on any pool thread) attribute to it.
  job->traceId = obs::newTraceId();
  job->submitMs = nowMs();
  if (jobOpts.deadlineMs > 0.0) {
    job->token.setDeadline(
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(jobOpts.deadlineMs)));
  }

  shard.queued.push_back(job);
  shard.jobs[job->id] = job;
  {
    std::lock_guard<std::mutex> orderLock(orderMutex_);
    submissionOrder_.push_back(job->id);
  }
  stateCounter(JobState::kQueued).inc();  // serve.jobs.submitted
  queueDepthGauge().add(1.0);
  shard.depthGauge->add(1.0);
  const std::size_t depth =
      queuedTotal_.fetch_add(1, std::memory_order_relaxed) + 1;
  queueMaxDepthGauge().setMax(static_cast<double>(depth));
  pumpLocked(shard);
  return job->id;
}

std::uint64_t CalibrationService::submit(std::string userId,
                                         sim::CalibrationCapture capture,
                                         JobOptions jobOpts) {
  return submit(std::move(userId),
                std::make_shared<const sim::CalibrationCapture>(
                    std::move(capture)),
                jobOpts);
}

void CalibrationService::pumpLocked(Shard& shard) {
  // One drainer task can feed one worker; spawn up to the pool width per
  // shard. A drainer finding its queue already empty exits immediately, so
  // a spare one is cheap, but a missing one would strand queued work.
  while (shard.drainersInFlight < pool_.threadCount() &&
         shard.drainersInFlight < shard.queued.size()) {
    ++shard.drainersInFlight;
    pool_.submit([this, &shard] { drainQueue(shard); });
  }
}

void CalibrationService::drainQueue(Shard& shard) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.queued.empty()) {
        --shard.drainersInFlight;
        shard.cv.notify_all();
        return;
      }
      job = shard.queued.front();
      shard.queued.pop_front();
      queueDepthGauge().add(-1.0);
      shard.depthGauge->add(-1.0);
      queuedTotal_.fetch_sub(1, std::memory_order_relaxed);
      job->queueMs = nowMs() - job->submitMs;
      // A deadline that passed while the job waited expires it here — the
      // caller's budget is wall time from submission, not run time.
      if (job->token.due()) {
        job->state = job->token.cancelRequested() ? JobState::kCancelled
                                                  : JobState::kExpired;
      } else {
        job->state = JobState::kRunning;
        ++shard.running;
        job->startMs = nowMs();
      }
    }
    if (job->state == JobState::kRunning) {
      runningGauge().add(1.0);
      executeJob(job);
      runningGauge().add(-1.0);
    } else {
      finishJob(job, job->state);
    }
  }
}

core::PersonalHrtf CalibrationService::runStreaming(
    const std::shared_ptr<Job>& job) {
  UNIQ_SPAN("serve.job.streaming");
  static obs::Counter& streamingJobs =
      obs::registry().counter("serve.jobs.streaming");
  streamingJobs.inc();

  stream::StreamingSessionOptions sopts;
  sopts.pipeline = opts_.pipeline;
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(*job->capture), sopts);
  for (std::size_t i = 0; i < job->capture->stops.size(); ++i) {
    // Between-push token polls give streaming jobs finer-grained
    // cancellation than the batch pipeline's stage boundaries.
    if (job->token.due()) {
      session.cancel();
      break;
    }
    // Early stop: the running table stabilized, the remaining stops would
    // not change it materially — finalize now and return sooner.
    if (session.converged()) break;
    session.push(job->capture->stops[i], i);
  }
  return session.finalize(&job->report).personal;
}

void CalibrationService::executeJob(const std::shared_ptr<Job>& job) {
  obs::TraceContextScope traceScope(job->traceId);
  UNIQ_SPAN("serve.job");
  Shard& shard = *shards_[job->shardIdx];
  JobState terminalState = JobState::kDone;
  try {
    auto personal =
        job->opts.streaming
            ? runStreaming(job)
            : pipeline_.run(*job->capture, &job->report, &job->token);
    if (personal.aborted) {
      terminalState = job->token.cancelRequested() ? JobState::kCancelled
                                                   : JobState::kExpired;
      std::lock_guard<std::mutex> lock(shard.mutex);
      job->diagnostics = std::move(personal.diagnostics);
    } else {
      auto table = std::make_shared<const core::HrtfTable>(
          std::move(personal.table));
      // Only genuinely personalized tables enter the per-user cache; the
      // kFailed population-average fallback must not masquerade as the
      // user's own table on the next lookup.
      if (personal.status != core::PipelineStatus::kFailed)
        cache_.put(job->userId, table);
      std::lock_guard<std::mutex> lock(shard.mutex);
      job->status = personal.status;
      job->table = std::move(table);
      job->diagnostics = std::move(personal.diagnostics);
    }
  } catch (const std::exception& e) {
    // The pipeline is total over non-empty captures, so this is a last
    // line of defense (empty capture, bad_alloc, ...): the job fails, the
    // worker and the service live on.
    std::lock_guard<std::mutex> lock(shard.mutex);
    job->status = core::PipelineStatus::kFailed;
    job->error = e.what();
  }
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    --shard.running;
  }
  finishJob(job, terminalState);
}

void CalibrationService::finishJob(const std::shared_ptr<Job>& job,
                                   JobState state) {
  Shard& shard = *shards_[job->shardIdx];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    job->state = state;
    job->runMs = job->startMs > 0.0 ? nowMs() - job->startMs : 0.0;
  }
  stateCounter(state).inc();
  if (state == JobState::kDone &&
      job->status == core::PipelineStatus::kFailed) {
    static obs::Counter& failed =
        obs::registry().counter("serve.jobs.failed");
    failed.inc();
  }
  obs::registry()
      .histogram("serve.job.queue_ms", kLatencyBins)
      .observe(job->queueMs);
  obs::registry()
      .histogram("serve.job.run_ms", kLatencyBins)
      .observe(job->runMs);
  shard.cv.notify_all();
}

bool CalibrationService::cancel(std::uint64_t id) {
  Shard& shard = shardForId(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.jobs.find(id);
  if (it == shard.jobs.end()) return false;
  auto& job = it->second;
  if (job->terminal()) return false;
  job->token.requestCancel();
  if (job->state == JobState::kQueued) {
    const auto pos = std::find(shard.queued.begin(), shard.queued.end(), job);
    if (pos != shard.queued.end()) {
      shard.queued.erase(pos);
      queueDepthGauge().add(-1.0);
      shard.depthGauge->add(-1.0);
      queuedTotal_.fetch_sub(1, std::memory_order_relaxed);
    }
    job->state = JobState::kCancelled;
    job->queueMs = nowMs() - job->submitMs;
    stateCounter(JobState::kCancelled).inc();
    shard.cv.notify_all();
  }
  // kRunning: the token is flagged; the pipeline aborts at its next stage
  // boundary and the worker records the cancelled state.
  return true;
}

JobResult CalibrationService::wait(std::uint64_t id) {
  Shard& shard = shardForId(id);
  std::unique_lock<std::mutex> lock(shard.mutex);
  const auto it = shard.jobs.find(id);
  UNIQ_REQUIRE(it != shard.jobs.end(), "unknown job id");
  const auto job = it->second;
  shard.cv.wait(lock, [&] { return job->terminal(); });
  return job->result();
}

std::vector<JobResult> CalibrationService::drain() {
  // Quiesce shard by shard; a shard already drained stays drained because
  // drain() races only with new submissions, which the caller owns.
  std::unordered_map<std::uint64_t, JobResult> finished;
  for (auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait(lock, [&] {
      for (const auto& [id, job] : shard.jobs)
        if (!job->terminal()) return false;
      return true;
    });
    for (const auto& [id, job] : shard.jobs) finished.emplace(id, job->result());
    shard.jobs.clear();
  }
  std::lock_guard<std::mutex> orderLock(orderMutex_);
  std::vector<JobResult> results;
  results.reserve(submissionOrder_.size());
  for (const auto id : submissionOrder_) {
    const auto it = finished.find(id);
    if (it != finished.end()) results.push_back(std::move(it->second));
  }
  submissionOrder_.clear();
  return results;
}

std::size_t CalibrationService::queuedCount() const {
  return queuedTotal_.load(std::memory_order_relaxed);
}

std::size_t CalibrationService::runningCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->running;
  }
  return total;
}

}  // namespace uniq::serve
