#include "serve/calibration_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/streaming_session.h"

namespace uniq::serve {

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Gauge& queueDepthGauge() {
  static obs::Gauge& g = obs::registry().gauge("serve.queue.depth");
  return g;
}
obs::Gauge& queueMaxDepthGauge() {
  static obs::Gauge& g = obs::registry().gauge("serve.queue.max_depth");
  return g;
}
obs::Gauge& runningGauge() {
  static obs::Gauge& g = obs::registry().gauge("serve.jobs.running");
  return g;
}
obs::Counter& stateCounter(JobState state) {
  static obs::Counter& submitted =
      obs::registry().counter("serve.jobs.submitted");
  static obs::Counter& done = obs::registry().counter("serve.jobs.done");
  static obs::Counter& cancelled =
      obs::registry().counter("serve.jobs.cancelled");
  static obs::Counter& expired =
      obs::registry().counter("serve.jobs.expired");
  static obs::Counter& rejected =
      obs::registry().counter("serve.jobs.rejected");
  switch (state) {
    case JobState::kDone:
      return done;
    case JobState::kCancelled:
      return cancelled;
    case JobState::kExpired:
      return expired;
    case JobState::kRejected:
      return rejected;
    default:
      return submitted;
  }
}
const obs::HistogramOptions kLatencyBins{0.1, 2.0, 24};

std::size_t resolveWorkers(std::size_t requested) {
  if (requested > 0) return requested;
  // Default sizing mirrors common::globalPool(): UNIQ_NUM_THREADS when set,
  // else hardware concurrency, clamped to [1, 16]. Unlike the global pool
  // the service keeps the full count — its workers run whole jobs while the
  // submitting thread waits, so there is no caller to subtract.
  std::size_t n = 0;
  if (const char* env = std::getenv("UNIQ_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) n = static_cast<std::size_t>(parsed);
  }
  if (n == 0) n = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  return std::clamp<std::size_t>(n, 1, 16);
}

}  // namespace

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kExpired:
      return "expired";
    case JobState::kRejected:
      return "rejected";
  }
  return "unknown";
}

/// Internal job record. State transitions happen under the service mutex;
/// the abort token is the only cross-thread channel used mid-run.
struct CalibrationService::Job {
  std::uint64_t id = 0;
  std::string userId;
  std::shared_ptr<const sim::CalibrationCapture> capture;
  JobOptions opts;
  core::RunAbortToken token;

  JobState state = JobState::kQueued;
  core::PipelineStatus status = core::PipelineStatus::kFailed;
  std::shared_ptr<const core::HrtfTable> table;
  obs::RunReport report;
  std::vector<obs::Diagnostic> diagnostics;
  std::string error;

  double submitMs = 0.0;
  double startMs = 0.0;
  double queueMs = 0.0;
  double runMs = 0.0;

  bool terminal() const {
    return state != JobState::kQueued && state != JobState::kRunning;
  }

  JobResult result() const {
    JobResult r;
    r.id = id;
    r.userId = userId;
    r.state = state;
    r.status = status;
    r.table = table;
    r.report = report;
    r.diagnostics = diagnostics;
    r.queueMs = queueMs;
    r.runMs = runMs;
    r.error = error;
    return r;
  }
};

CalibrationService::CalibrationService(Options opts)
    : opts_(std::move(opts)),
      cache_(std::max<std::size_t>(opts_.cacheCapacity, 1), opts_.persistDir),
      pipeline_(opts_.pipeline),
      pool_(resolveWorkers(opts_.workers)) {
  obs::registry()
      .gauge("serve.workers")
      .set(static_cast<double>(pool_.threadCount()));
}

CalibrationService::~CalibrationService() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutdown_ = true;
  // Everything still waiting is cancelled; running jobs finish on their
  // own (their capture and token live in the shared Job record).
  for (const auto& job : queued_) {
    job->token.requestCancel();
    job->state = JobState::kCancelled;
    job->queueMs = nowMs() - job->submitMs;
    stateCounter(JobState::kCancelled).inc();
    queueDepthGauge().add(-1.0);
  }
  queued_.clear();
  cv_.notify_all();
  cv_.wait(lock, [this] { return running_ == 0 && drainersInFlight_ == 0; });
}

std::uint64_t CalibrationService::submit(
    std::string userId, std::shared_ptr<const sim::CalibrationCapture> capture,
    JobOptions jobOpts) {
  UNIQ_REQUIRE(capture != nullptr, "null capture");
  std::lock_guard<std::mutex> lock(mutex_);
  if (shutdown_ || queued_.size() >= opts_.maxQueued) {
    stateCounter(JobState::kRejected).inc();
    return kInvalidJobId;
  }

  auto job = std::make_shared<Job>();
  job->id = nextId_++;
  job->userId = std::move(userId);
  job->capture = std::move(capture);
  job->opts = jobOpts;
  job->submitMs = nowMs();
  if (jobOpts.deadlineMs > 0.0) {
    job->token.setDeadline(
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(jobOpts.deadlineMs)));
  }

  queued_.push_back(job);
  jobs_[job->id] = job;
  submissionOrder_.push_back(job->id);
  stateCounter(JobState::kQueued).inc();  // serve.jobs.submitted
  queueDepthGauge().add(1.0);
  queueMaxDepthGauge().setMax(static_cast<double>(queued_.size()));
  pumpLocked();
  return job->id;
}

std::uint64_t CalibrationService::submit(std::string userId,
                                         sim::CalibrationCapture capture,
                                         JobOptions jobOpts) {
  return submit(std::move(userId),
                std::make_shared<const sim::CalibrationCapture>(
                    std::move(capture)),
                jobOpts);
}

void CalibrationService::pumpLocked() {
  // One drainer task can feed one worker; spawn up to the pool width. A
  // drainer finding the queue already empty exits immediately, so a spare
  // one is cheap, but a missing one would strand queued work.
  while (drainersInFlight_ < pool_.threadCount() &&
         drainersInFlight_ < queued_.size()) {
    ++drainersInFlight_;
    pool_.submit([this] { drainQueue(); });
  }
}

void CalibrationService::drainQueue() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (queued_.empty()) {
        --drainersInFlight_;
        cv_.notify_all();
        return;
      }
      job = queued_.front();
      queued_.pop_front();
      queueDepthGauge().add(-1.0);
      job->queueMs = nowMs() - job->submitMs;
      // A deadline that passed while the job waited expires it here — the
      // caller's budget is wall time from submission, not run time.
      if (job->token.due()) {
        job->state = job->token.cancelRequested() ? JobState::kCancelled
                                                  : JobState::kExpired;
      } else {
        job->state = JobState::kRunning;
        ++running_;
        job->startMs = nowMs();
      }
    }
    if (job->state == JobState::kRunning) {
      runningGauge().add(1.0);
      executeJob(job);
      runningGauge().add(-1.0);
    } else {
      finishJob(job, job->state);
    }
  }
}

core::PersonalHrtf CalibrationService::runStreaming(
    const std::shared_ptr<Job>& job) {
  UNIQ_SPAN("serve.job.streaming");
  static obs::Counter& streamingJobs =
      obs::registry().counter("serve.jobs.streaming");
  streamingJobs.inc();

  stream::StreamingSessionOptions sopts;
  sopts.pipeline = opts_.pipeline;
  stream::StreamingSession session(
      stream::CaptureHeader::fromCapture(*job->capture), sopts);
  for (std::size_t i = 0; i < job->capture->stops.size(); ++i) {
    // Between-push token polls give streaming jobs finer-grained
    // cancellation than the batch pipeline's stage boundaries.
    if (job->token.due()) {
      session.cancel();
      break;
    }
    // Early stop: the running table stabilized, the remaining stops would
    // not change it materially — finalize now and return sooner.
    if (session.converged()) break;
    session.push(job->capture->stops[i], i);
  }
  return session.finalize(&job->report).personal;
}

void CalibrationService::executeJob(const std::shared_ptr<Job>& job) {
  UNIQ_SPAN("serve.job");
  JobState terminalState = JobState::kDone;
  try {
    auto personal =
        job->opts.streaming
            ? runStreaming(job)
            : pipeline_.run(*job->capture, &job->report, &job->token);
    if (personal.aborted) {
      terminalState = job->token.cancelRequested() ? JobState::kCancelled
                                                   : JobState::kExpired;
      std::lock_guard<std::mutex> lock(mutex_);
      job->diagnostics = std::move(personal.diagnostics);
    } else {
      auto table = std::make_shared<const core::HrtfTable>(
          std::move(personal.table));
      // Only genuinely personalized tables enter the per-user cache; the
      // kFailed population-average fallback must not masquerade as the
      // user's own table on the next lookup.
      if (personal.status != core::PipelineStatus::kFailed)
        cache_.put(job->userId, table);
      std::lock_guard<std::mutex> lock(mutex_);
      job->status = personal.status;
      job->table = std::move(table);
      job->diagnostics = std::move(personal.diagnostics);
    }
  } catch (const std::exception& e) {
    // The pipeline is total over non-empty captures, so this is a last
    // line of defense (empty capture, bad_alloc, ...): the job fails, the
    // worker and the service live on.
    std::lock_guard<std::mutex> lock(mutex_);
    job->status = core::PipelineStatus::kFailed;
    job->error = e.what();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
  }
  finishJob(job, terminalState);
}

void CalibrationService::finishJob(const std::shared_ptr<Job>& job,
                                   JobState state) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job->state = state;
    job->runMs = job->startMs > 0.0 ? nowMs() - job->startMs : 0.0;
  }
  stateCounter(state).inc();
  if (state == JobState::kDone &&
      job->status == core::PipelineStatus::kFailed) {
    static obs::Counter& failed =
        obs::registry().counter("serve.jobs.failed");
    failed.inc();
  }
  obs::registry()
      .histogram("serve.job.queue_ms", kLatencyBins)
      .observe(job->queueMs);
  obs::registry()
      .histogram("serve.job.run_ms", kLatencyBins)
      .observe(job->runMs);
  cv_.notify_all();
}

bool CalibrationService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  auto& job = it->second;
  if (job->terminal()) return false;
  job->token.requestCancel();
  if (job->state == JobState::kQueued) {
    const auto pos = std::find(queued_.begin(), queued_.end(), job);
    if (pos != queued_.end()) {
      queued_.erase(pos);
      queueDepthGauge().add(-1.0);
    }
    job->state = JobState::kCancelled;
    job->queueMs = nowMs() - job->submitMs;
    stateCounter(JobState::kCancelled).inc();
    cv_.notify_all();
  }
  // kRunning: the token is flagged; the pipeline aborts at its next stage
  // boundary and the worker records the cancelled state.
  return true;
}

JobResult CalibrationService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  UNIQ_REQUIRE(it != jobs_.end(), "unknown job id");
  const auto job = it->second;
  cv_.wait(lock, [&] { return job->terminal(); });
  return job->result();
}

std::vector<JobResult> CalibrationService::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] {
    for (const auto& [id, job] : jobs_)
      if (!job->terminal()) return false;
    return true;
  });
  std::vector<JobResult> results;
  results.reserve(submissionOrder_.size());
  for (const auto id : submissionOrder_) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) results.push_back(it->second->result());
  }
  jobs_.clear();
  submissionOrder_.clear();
  return results;
}

std::size_t CalibrationService::queuedCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_.size();
}

std::size_t CalibrationService::runningCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

}  // namespace uniq::serve
