#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hrtf_table.h"

namespace uniq::serve {

/// Which tier answered a TableCache lookup (see class comment for the tier
/// ladder). Exposed so load drivers and tests can attribute every lookup
/// without diffing global counters across threads.
enum class CacheTier {
  kMemory,    ///< served from the in-memory LRU
  kDisk,      ///< rescued from the persist dir (promoted into memory)
  kFallback,  ///< answered with the shared population-average table
  kMiss,      ///< nowhere (get() only; getOrFallback never returns this)
};

/// Stable lower-case name ("memory", ..., "miss").
const char* cacheTierName(CacheTier tier);

struct TableCacheOptions {
  /// Total in-memory entry budget, shared across every shard (>= 1). The
  /// cache never holds more than `capacity` tables no matter how lookups
  /// distribute over shards.
  std::size_t capacity = 32;
  /// When non-empty, must be an existing writable directory; put() then
  /// mirrors every table to disk and cold get()s probe it.
  std::string persistDir;
  /// Power-of-two shard count. Each shard has its own mutex, LRU list, and
  /// map; a lookup locks only its user's shard, so a hot cache stops
  /// serializing on one global mutex. 1 reproduces the pre-sharding cache
  /// exactly (single lock, single LRU — bitwise the same behavior).
  std::size_t shards = 1;
  /// Disk-tier format: when true (default) put() persists the compact
  /// quantized container (~4x smaller, see core::saveHrtfTableQuantized and
  /// docs/CAPACITY.md); false keeps the bit-exact float64 container. Reads
  /// probe the quantized path first, then the legacy one, so either format
  /// on disk is always loadable.
  bool quantizedDisk = true;
};

/// Thread-safe sharded LRU cache of personalized HrtfTables keyed by user
/// id — the serving layer's answer to "millions of users, a few hot at a
/// time". Three tiers back a lookup:
///
///   1. memory — the per-shard LRU maps (hit),
///   2. disk   — `<persistDir>/<user>.uniqq` (quantized) or `<user>.uniq`
///               written by put() and probed on a cold miss (disk hit; the
///               table is promoted into memory),
///   3. model  — the population-average template (fallback; shared across
///               users and never counted as that user's table).
///
/// Users hash onto 2^k shards; each shard is an independent mutex + LRU,
/// and the capacity budget is shared through one atomic entry count, so
/// the whole cache stays bounded while eviction stays shard-local.
///
/// Tables are handed out as shared_ptr<const HrtfTable>, so an eviction
/// never invalidates a table a concurrent AoA batch is still matching
/// against. Counters land in the process registry under "serve.cache.*".
class TableCache {
 public:
  using Options = TableCacheOptions;

  /// Point-in-time counter values (also exported as metrics), aggregated
  /// over every shard.
  struct Stats {
    std::uint64_t hits = 0;       ///< served from memory
    std::uint64_t misses = 0;     ///< not in memory (disk may still hit)
    std::uint64_t diskHits = 0;   ///< misses rescued by the persist dir
    std::uint64_t evictions = 0;  ///< LRU entries dropped over capacity
    std::uint64_t fallbacks = 0;  ///< lookups answered population-average
  };

  explicit TableCache(Options opts);
  /// Pre-sharding constructor shape: capacity + optional persist dir, one
  /// shard, quantized disk tier.
  explicit TableCache(std::size_t capacity, std::string persistDir = "");

  /// The user's table from memory or disk, or nullptr when neither has it.
  /// When `tier` is non-null it reports which tier answered (kMiss on
  /// nullptr).
  std::shared_ptr<const core::HrtfTable> get(const std::string& userId,
                                             CacheTier* tier = nullptr);

  /// get(), falling back to the population-average table at `sampleRate`
  /// when the user has no personalized table anywhere. Never returns null:
  /// an uncalibrated user gets the generic spatializer, same contract as
  /// the pipeline's kFailed fallback.
  std::shared_ptr<const core::HrtfTable> getOrFallback(
      const std::string& userId, double sampleRate = 48000.0,
      CacheTier* tier = nullptr);

  /// Insert or replace the user's table (and persist it when configured),
  /// evicting least-recently-used entries beyond the shared capacity
  /// budget.
  void put(const std::string& userId,
           std::shared_ptr<const core::HrtfTable> table);

  /// Whether the user is currently in memory. Does not touch recency and
  /// does not probe disk (tests use this to observe eviction order).
  bool contains(const std::string& userId) const;

  std::size_t size() const;
  std::size_t capacity() const { return opts_.capacity; }
  std::size_t shardCount() const { return shards_.size(); }
  const std::string& persistDir() const { return opts_.persistDir; }
  Stats stats() const;

  /// The shared population-average table at `sampleRate` (built once per
  /// distinct rate, process-wide). Public so tests and the CLI can compare
  /// against exactly what a fallback lookup returns.
  static std::shared_ptr<const core::HrtfTable> populationAverageTable(
      double sampleRate);

 private:
  struct Entry {
    std::shared_ptr<const core::HrtfTable> table;
    std::list<std::string>::iterator pos;
  };
  /// One independent LRU; every member is guarded by `mutex`.
  struct Shard {
    mutable std::mutex mutex;
    /// Recency list, most recent first; map entries point into it.
    std::list<std::string> lru;
    std::unordered_map<std::string, Entry> map;
    Stats stats;
  };

  std::size_t shardFor(const std::string& userId) const;
  /// Move `userId` to the most-recent position of its shard, inserting if
  /// absent; the caller holds the shard mutex. Evicts from the shard's cold
  /// end while the shared budget is exceeded.
  void insertLocked(Shard& shard, const std::string& userId,
                    std::shared_ptr<const core::HrtfTable> table);
  std::string tablePath(const std::string& userId, bool quantized) const;

  const Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Entries across all shards — the shared capacity budget's ledger.
  std::atomic<std::size_t> totalEntries_{0};
};

}  // namespace uniq::serve
