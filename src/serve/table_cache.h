#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/hrtf_table.h"

namespace uniq::serve {

/// Thread-safe LRU cache of personalized HrtfTables keyed by user id — the
/// serving layer's answer to "millions of users, a few hot at a time".
/// Three tiers back a lookup:
///
///   1. memory — the LRU map itself (hit),
///   2. disk   — `<persistDir>/<user>.uniq` written by put() and probed on
///               a cold miss (disk hit; the table is promoted into memory),
///   3. model  — the population-average template (fallback; shared across
///               users and never counted as that user's table).
///
/// Tables are handed out as shared_ptr<const HrtfTable>, so an eviction
/// never invalidates a table a concurrent AoA batch is still matching
/// against. Counters land in the process registry under "serve.cache.*".
class TableCache {
 public:
  /// Point-in-time counter values (also exported as metrics).
  struct Stats {
    std::uint64_t hits = 0;       ///< served from memory
    std::uint64_t misses = 0;     ///< not in memory (disk may still hit)
    std::uint64_t diskHits = 0;   ///< misses rescued by the persist dir
    std::uint64_t evictions = 0;  ///< LRU entries dropped over capacity
    std::uint64_t fallbacks = 0;  ///< lookups answered population-average
  };

  /// `capacity` bounds the in-memory entry count (>= 1). `persistDir`, when
  /// non-empty, must be an existing writable directory; put() then mirrors
  /// every table to disk and cold get()s probe it.
  explicit TableCache(std::size_t capacity, std::string persistDir = "");

  /// The user's table from memory or disk, or nullptr when neither has it.
  std::shared_ptr<const core::HrtfTable> get(const std::string& userId);

  /// get(), falling back to the population-average table at `sampleRate`
  /// when the user has no personalized table anywhere. Never returns null:
  /// an uncalibrated user gets the generic spatializer, same contract as
  /// the pipeline's kFailed fallback.
  std::shared_ptr<const core::HrtfTable> getOrFallback(
      const std::string& userId, double sampleRate = 48000.0);

  /// Insert or replace the user's table (and persist it when configured),
  /// evicting least-recently-used entries beyond capacity.
  void put(const std::string& userId,
           std::shared_ptr<const core::HrtfTable> table);

  /// Whether the user is currently in memory. Does not touch recency and
  /// does not probe disk (tests use this to observe eviction order).
  bool contains(const std::string& userId) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const std::string& persistDir() const { return persistDir_; }
  Stats stats() const;

  /// The shared population-average table at `sampleRate` (built once per
  /// distinct rate, process-wide). Public so tests and the CLI can compare
  /// against exactly what a fallback lookup returns.
  static std::shared_ptr<const core::HrtfTable> populationAverageTable(
      double sampleRate);

 private:
  /// Move `userId` to the most-recent position, inserting if absent; the
  /// caller holds mutex_. Evicts from the cold end past capacity.
  void insertLocked(const std::string& userId,
                    std::shared_ptr<const core::HrtfTable> table);
  std::string tablePath(const std::string& userId) const;

  const std::size_t capacity_;
  const std::string persistDir_;

  mutable std::mutex mutex_;
  /// Recency list, most recent first; map entries point into it.
  std::list<std::string> lru_;
  struct Entry {
    std::shared_ptr<const core::HrtfTable> table;
    std::list<std::string>::iterator pos;
  };
  std::unordered_map<std::string, Entry> map_;
  Stats stats_;
};

}  // namespace uniq::serve
