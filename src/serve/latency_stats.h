#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace uniq::serve {

/// Latency sample sink with bounded memory: past `kCap` samples it halves
/// the kept set and doubles the sampling stride, so a multi-million-op run
/// still yields statistically sound percentiles from ~1M samples. Exact
/// within its sample (no binning) — serve-load uses it as the reference
/// estimator the log-binned obs::Histogram::quantile is cross-checked
/// against (the "estimator_check" section of the load report).
///
/// Single-threaded by design: each load worker owns one reservoir and the
/// driver merges the sample vectors afterwards.
struct LatencyReservoir {
  static constexpr std::size_t kCap = 1u << 20;
  std::vector<double> samples;
  std::uint64_t stride = 1;
  std::uint64_t seen = 0;

  void record(double ms) {
    if (seen++ % stride != 0) return;
    if (samples.size() >= kCap) {
      std::size_t w = 0;
      for (std::size_t r = 0; r < samples.size(); r += 2)
        samples[w++] = samples[r];
      samples.resize(w);
      stride *= 2;
    }
    samples.push_back(ms);
  }
};

/// q-quantile of an ascending-sorted sample by rank (no interpolation);
/// 0.0 for an empty sample.
inline double percentileMs(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx =
      static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace uniq::serve
