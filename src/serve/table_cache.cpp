#include "serve/table_cache.h"

#include <map>
#include <utility>

#include "common/error.h"
#include "core/near_far.h"
#include "core/table_io.h"
#include "head/hrtf_database.h"
#include "head/subject.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::serve {

namespace {

obs::Counter& hitsCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.hits");
  return c;
}
obs::Counter& missesCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.misses");
  return c;
}
obs::Counter& diskHitsCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.disk_hits");
  return c;
}
obs::Counter& evictionsCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.evictions");
  return c;
}
obs::Counter& fallbacksCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.fallbacks");
  return c;
}
obs::Gauge& sizeGauge() {
  static obs::Gauge& g = obs::registry().gauge("serve.cache.size");
  return g;
}

/// Flatten a user id into something safe as a single path component; ids
/// are caller-chosen strings, not trusted filenames.
std::string sanitizeForFilename(const std::string& userId) {
  std::string out = userId.empty() ? std::string("_") : userId;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

TableCache::TableCache(std::size_t capacity, std::string persistDir)
    : capacity_(capacity), persistDir_(std::move(persistDir)) {
  UNIQ_REQUIRE(capacity_ >= 1, "cache capacity must be >= 1");
}

std::string TableCache::tablePath(const std::string& userId) const {
  return persistDir_ + "/" + sanitizeForFilename(userId) + ".uniq";
}

std::shared_ptr<const core::HrtfTable> TableCache::get(
    const std::string& userId) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = map_.find(userId);
    if (it != map_.end()) {
      ++stats_.hits;
      hitsCounter().inc();
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      return it->second.table;
    }
    ++stats_.misses;
    missesCounter().inc();
  }
  if (persistDir_.empty()) return nullptr;

  // Cold miss with persistence configured: probe disk outside the lock (a
  // load takes milliseconds; concurrent hits must not wait on it). Two
  // threads may race to load the same file — both succeed, the second
  // insert wins, and the table contents are identical.
  UNIQ_SPAN("serve.cache.disk_load");
  auto loaded = core::tryLoadHrtfTable(tablePath(userId));
  if (!loaded) return nullptr;
  auto table =
      std::make_shared<const core::HrtfTable>(std::move(*loaded));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.diskHits;
  diskHitsCounter().inc();
  insertLocked(userId, table);
  return table;
}

std::shared_ptr<const core::HrtfTable> TableCache::getOrFallback(
    const std::string& userId, double sampleRate) {
  if (auto table = get(userId)) return table;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.fallbacks;
  }
  fallbacksCounter().inc();
  return populationAverageTable(sampleRate);
}

void TableCache::put(const std::string& userId,
                     std::shared_ptr<const core::HrtfTable> table) {
  UNIQ_REQUIRE(table != nullptr, "cannot cache a null table");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    insertLocked(userId, table);
  }
  if (!persistDir_.empty()) {
    UNIQ_SPAN("serve.cache.persist");
    core::saveHrtfTable(tablePath(userId), *table);
  }
}

void TableCache::insertLocked(const std::string& userId,
                              std::shared_ptr<const core::HrtfTable> table) {
  const auto it = map_.find(userId);
  if (it != map_.end()) {
    it->second.table = std::move(table);
    lru_.splice(lru_.begin(), lru_, it->second.pos);
  } else {
    lru_.push_front(userId);
    map_[userId] = Entry{std::move(table), lru_.begin()};
    while (map_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
      evictionsCounter().inc();
    }
  }
  sizeGauge().set(static_cast<double>(map_.size()));
}

bool TableCache::contains(const std::string& userId) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.count(userId) > 0;
}

std::size_t TableCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

TableCache::Stats TableCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::shared_ptr<const core::HrtfTable> TableCache::populationAverageTable(
    double sampleRate) {
  // One generic table per distinct sample rate, built on first request and
  // shared process-wide — the same construction the pipeline's kFailed
  // fallback uses, so "cache fallback" and "calibration fallback" sound
  // identical to the listener.
  static std::mutex mutex;
  static std::map<double, std::shared_ptr<const core::HrtfTable>> byRate;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = byRate[sampleRate];
  if (!slot) {
    UNIQ_SPAN("serve.cache.build_fallback");
    head::HrtfDatabaseOptions dbOpts;
    if (sampleRate > 8000.0) dbOpts.sampleRate = sampleRate;
    const head::HrtfDatabase db(head::globalTemplateSubject(), dbOpts);
    auto nearTable = core::nearTableFromDatabase(db, dbOpts.referenceDistance);
    auto farTable = core::farTableFromDatabase(db);
    slot = std::make_shared<const core::HrtfTable>(std::move(nearTable),
                                                   std::move(farTable));
  }
  return slot;
}

}  // namespace uniq::serve
