#include "serve/table_cache.h"

#include <functional>
#include <map>
#include <utility>

#include "common/error.h"
#include "core/near_far.h"
#include "core/table_io.h"
#include "head/hrtf_database.h"
#include "head/subject.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::serve {

namespace {

obs::Counter& hitsCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.hits");
  return c;
}
obs::Counter& missesCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.misses");
  return c;
}
obs::Counter& diskHitsCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.disk_hits");
  return c;
}
obs::Counter& evictionsCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.evictions");
  return c;
}
obs::Counter& fallbacksCounter() {
  static obs::Counter& c = obs::registry().counter("serve.cache.fallbacks");
  return c;
}
obs::Gauge& sizeGauge() {
  static obs::Gauge& g = obs::registry().gauge("serve.cache.size");
  return g;
}

/// Flatten a user id into something safe as a single path component; ids
/// are caller-chosen strings, not trusted filenames.
std::string sanitizeForFilename(const std::string& userId) {
  std::string out = userId.empty() ? std::string("_") : userId;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

bool isPowerOfTwo(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

const char* cacheTierName(CacheTier tier) {
  switch (tier) {
    case CacheTier::kMemory:
      return "memory";
    case CacheTier::kDisk:
      return "disk";
    case CacheTier::kFallback:
      return "fallback";
    case CacheTier::kMiss:
      return "miss";
  }
  return "unknown";
}

TableCache::TableCache(Options opts) : opts_(std::move(opts)) {
  UNIQ_REQUIRE(opts_.capacity >= 1, "cache capacity must be >= 1");
  UNIQ_REQUIRE(isPowerOfTwo(opts_.shards),
               "cache shard count must be a power of two");
  shards_.reserve(opts_.shards);
  for (std::size_t i = 0; i < opts_.shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

TableCache::TableCache(std::size_t capacity, std::string persistDir)
    : TableCache(Options{capacity, std::move(persistDir), 1, true}) {}

std::size_t TableCache::shardFor(const std::string& userId) const {
  // Power-of-two shard count makes the modulo a mask; std::hash spreads
  // sequential user ids well enough that shards stay balanced.
  return std::hash<std::string>{}(userId) & (shards_.size() - 1);
}

std::string TableCache::tablePath(const std::string& userId,
                                  bool quantized) const {
  return opts_.persistDir + "/" + sanitizeForFilename(userId) +
         (quantized ? ".uniqq" : ".uniq");
}

std::shared_ptr<const core::HrtfTable> TableCache::get(
    const std::string& userId, CacheTier* tier) {
  Shard& shard = *shards_[shardFor(userId)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(userId);
    if (it != shard.map.end()) {
      ++shard.stats.hits;
      hitsCounter().inc();
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
      if (tier) *tier = CacheTier::kMemory;
      return it->second.table;
    }
    ++shard.stats.misses;
    missesCounter().inc();
  }
  if (tier) *tier = CacheTier::kMiss;
  if (opts_.persistDir.empty()) return nullptr;

  // Cold miss with persistence configured: probe disk outside the lock (a
  // load takes milliseconds; concurrent hits must not wait on it). The
  // quantized path is preferred — it is what put() writes — with the
  // legacy float64 path as a fallback for pre-quantization directories.
  // Two threads may race to load the same file — both succeed, the second
  // insert wins, and the table contents are identical.
  UNIQ_SPAN("serve.cache.disk_load");
  auto loaded = core::tryLoadHrtfTable(tablePath(userId, true));
  if (!loaded) loaded = core::tryLoadHrtfTable(tablePath(userId, false));
  if (!loaded) return nullptr;
  auto table =
      std::make_shared<const core::HrtfTable>(std::move(*loaded));
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.stats.diskHits;
  diskHitsCounter().inc();
  insertLocked(shard, userId, table);
  if (tier) *tier = CacheTier::kDisk;
  return table;
}

std::shared_ptr<const core::HrtfTable> TableCache::getOrFallback(
    const std::string& userId, double sampleRate, CacheTier* tier) {
  if (auto table = get(userId, tier)) return table;
  Shard& shard = *shards_[shardFor(userId)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.stats.fallbacks;
  }
  fallbacksCounter().inc();
  if (tier) *tier = CacheTier::kFallback;
  return populationAverageTable(sampleRate);
}

void TableCache::put(const std::string& userId,
                     std::shared_ptr<const core::HrtfTable> table) {
  UNIQ_REQUIRE(table != nullptr, "cannot cache a null table");
  Shard& shard = *shards_[shardFor(userId)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    insertLocked(shard, userId, table);
  }
  if (!opts_.persistDir.empty()) {
    UNIQ_SPAN("serve.cache.persist");
    if (opts_.quantizedDisk)
      core::saveHrtfTableQuantized(tablePath(userId, true), *table);
    else
      core::saveHrtfTable(tablePath(userId, false), *table);
  }
}

void TableCache::insertLocked(Shard& shard, const std::string& userId,
                              std::shared_ptr<const core::HrtfTable> table) {
  const auto it = shard.map.find(userId);
  if (it != shard.map.end()) {
    it->second.table = std::move(table);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
  } else {
    shard.lru.push_front(userId);
    shard.map[userId] = Entry{std::move(table), shard.lru.begin()};
    totalEntries_.fetch_add(1, std::memory_order_relaxed);
    // Shared budget, shard-local eviction: evict from this shard's cold end
    // while the whole cache is over capacity. Concurrent inserts in other
    // shards may each evict one of their own entries; the total can dip a
    // little under budget but never stays over it.
    while (totalEntries_.load(std::memory_order_relaxed) > opts_.capacity &&
           !shard.lru.empty()) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
      totalEntries_.fetch_sub(1, std::memory_order_relaxed);
      ++shard.stats.evictions;
      evictionsCounter().inc();
    }
  }
  sizeGauge().set(
      static_cast<double>(totalEntries_.load(std::memory_order_relaxed)));
}

bool TableCache::contains(const std::string& userId) const {
  const Shard& shard = *shards_[shardFor(userId)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.map.count(userId) > 0;
}

std::size_t TableCache::size() const {
  return totalEntries_.load(std::memory_order_relaxed);
}

TableCache::Stats TableCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.diskHits += shard->stats.diskHits;
    total.evictions += shard->stats.evictions;
    total.fallbacks += shard->stats.fallbacks;
  }
  return total;
}

std::shared_ptr<const core::HrtfTable> TableCache::populationAverageTable(
    double sampleRate) {
  // One generic table per distinct sample rate, built on first request and
  // shared process-wide — the same construction the pipeline's kFailed
  // fallback uses, so "cache fallback" and "calibration fallback" sound
  // identical to the listener.
  static std::mutex mutex;
  static std::map<double, std::shared_ptr<const core::HrtfTable>> byRate;
  std::lock_guard<std::mutex> lock(mutex);
  auto& slot = byRate[sampleRate];
  if (!slot) {
    UNIQ_SPAN("serve.cache.build_fallback");
    head::HrtfDatabaseOptions dbOpts;
    if (sampleRate > 8000.0) dbOpts.sampleRate = sampleRate;
    const head::HrtfDatabase db(head::globalTemplateSubject(), dbOpts);
    auto nearTable = core::nearTableFromDatabase(db, dbOpts.referenceDistance);
    auto farTable = core::farTableFromDatabase(db);
    slot = std::make_shared<const core::HrtfTable>(std::move(nearTable),
                                                   std::move(farTable));
  }
  return slot;
}

}  // namespace uniq::serve
