#pragma once

#include <string>
#include <vector>

#include "core/aoa.h"
#include "serve/table_cache.h"

namespace uniq::serve {

/// One AoA query against a user's cached personalized table. An empty
/// `source` selects the unknown-source path (paper Eq. 10/11); otherwise
/// the known-source objective (Eq. 9) runs against `source`.
struct AoaQuery {
  std::string userId;
  std::vector<double> left;
  std::vector<double> right;
  std::vector<double> source;
};

/// Per-query result, in the same order as the submitted batch.
struct AoaBatchItem {
  core::AoaEstimate estimate;
  /// False when the user had no personalized table anywhere and the
  /// population-average fallback answered — the angle is still usable, but
  /// a consumer ranking users by localization quality should know.
  bool personalized = false;
};

/// Batched AoA evaluation over the serving layer's TableCache: queries are
/// grouped by user so each user's table is fetched once (one cache lookup,
/// one AoaEstimator), queries fan out across the global thread pool, and
/// the estimator's template-spectrum cache plus the process FFT plan cache
/// amortize all transform setup across the batch. Estimates are identical
/// to calling AoaEstimator once per query.
class BatchAoaEngine {
 public:
  /// `cache` must outlive the engine. `opts` applies to every query;
  /// numThreads there is forced to 1 because the engine parallelizes across
  /// queries, not within one, and cacheTemplateSpectra is forced on.
  explicit BatchAoaEngine(TableCache& cache,
                          core::AoaEstimatorOptions opts = {});

  /// Run every query; results come back in query order. `numThreads` caps
  /// the query-level fan-out (0 = whole global pool, 1 = serial). Queries
  /// are independent, so results do not depend on the thread count. A
  /// query that throws (e.g. empty recordings) surfaces as InvalidArgument
  /// after the batch drains, matching parallelFor semantics.
  std::vector<AoaBatchItem> run(const std::vector<AoaQuery>& queries,
                                std::size_t numThreads = 0) const;

 private:
  TableCache& cache_;
  core::AoaEstimatorOptions opts_;
};

}  // namespace uniq::serve
