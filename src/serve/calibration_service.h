#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "obs/report.h"
#include "serve/table_cache.h"
#include "sim/measurement_session.h"

namespace uniq::serve {

/// Terminal (and transient) states of one calibration job. A job always
/// reaches exactly one of the terminal states; the service never loses one.
enum class JobState {
  kQueued,     ///< accepted, waiting for a worker
  kRunning,    ///< a worker is executing the pipeline
  kDone,       ///< pipeline finished; see JobResult::status for ok/degraded/
               ///< failed — a failed *calibration* is still a done *job*
  kCancelled,  ///< cancel() won the race (before or during the run)
  kExpired,    ///< the deadline passed before the job could finish
  kRejected,   ///< admission control refused it (queue full)
};

/// Stable lower-case name ("queued", ..., "rejected").
const char* jobStateName(JobState state);

/// Per-job knobs supplied at submit time.
struct JobOptions {
  /// Wall-clock budget measured from submission; 0 = none. A job that is
  /// still queued when the deadline passes is expired without running; a
  /// job already running aborts at the pipeline's next stage boundary.
  double deadlineMs = 0.0;
  /// Run the job through the streaming dataflow (stream::StreamingSession)
  /// instead of the batch pipeline: the worker replays the capture's stops
  /// into the session one at a time, polls the abort token between pushes
  /// (finer-grained cancellation than batch stage boundaries), and stops
  /// feeding early the moment the session's convergence signal fires. The
  /// session's extract/fuse nodes overlap, so stage N of this job runs
  /// while stage N-1 output is still streaming in. Results are mapped
  /// exactly like batch jobs; see docs/STREAMING.md for the latency
  /// trade-off.
  bool streaming = false;
};

/// Everything the service reports about one finished (or refused) job.
struct JobResult {
  std::uint64_t id = 0;
  std::string userId;
  /// The job's trace context: every span recorded while the job ran — on
  /// whichever pool worker — carries this id, and obs::traceEventJson
  /// groups the export by it. 0 only for rejected jobs.
  std::uint64_t traceId = 0;
  JobState state = JobState::kRejected;
  /// Calibration outcome; meaningful only when state == kDone.
  core::PipelineStatus status = core::PipelineStatus::kFailed;
  /// The produced table (kDone only; null for cancelled/expired jobs).
  /// Failed calibrations carry the population-average fallback here, same
  /// as CalibrationPipeline::run, but are never written into the cache.
  std::shared_ptr<const core::HrtfTable> table;
  /// Per-stage pipeline report (kDone and mid-run-aborted jobs).
  obs::RunReport report;
  std::vector<obs::Diagnostic> diagnostics;
  double queueMs = 0.0;  ///< submit -> worker pickup
  double runMs = 0.0;    ///< worker pickup -> terminal state
  /// Explanation for a job whose pipeline threw (also mapped to a failed
  /// status); empty otherwise.
  std::string error;
};

struct CalibrationServiceOptions {
  /// Concurrent calibration jobs (service-owned common::ThreadPool worker
  /// threads). 0 sizes like the global pool: total hardware threads,
  /// clamped to [1, 16]. Each job runs its pipeline stages inline on its
  /// worker (the pool suppresses nested fan-out), so `workers` is the whole
  /// parallelism story — jobs scale across users, not within one user.
  std::size_t workers = 0;
  /// Admission control: jobs allowed to wait in the queues (excluding the
  /// ones actively running). The budget is split evenly across shards
  /// (at least 1 per shard); submit() returns kInvalidJobId once the
  /// user's shard is full — backpressure the caller must handle, not a
  /// silent drop. With shards=1 this is exactly the pre-sharding global
  /// queue bound.
  std::size_t maxQueued = 64;
  /// Power-of-two shard count for the submission path. Each shard owns its
  /// own mutex, job queue, and job map, so admission, cancellation, and
  /// completion on different shards never contend on one global lock; the
  /// worker pool stays shared. 1 reproduces the single-queue service
  /// exactly (same ids, same FIFO order, same admission bound — pinned by
  /// tests).
  std::size_t shards = 1;
  /// In-memory entries in the per-user table cache (shared budget across
  /// the cache's shards).
  std::size_t cacheCapacity = 32;
  /// Shard count for the table cache (power of two; defaults to `shards`
  /// when 0).
  std::size_t cacheShards = 0;
  /// When non-empty, finished tables persist to `<dir>/<user>.uniqq` (the
  /// compact quantized container) and cold cache misses probe the same
  /// files (see TableCache).
  std::string persistDir;
  /// Pipeline configuration shared by every job.
  core::CalibrationPipelineOptions pipeline{};
};

/// Id returned by submit() when admission control rejects the job.
inline constexpr std::uint64_t kInvalidJobId = 0;

/// Multi-tenant calibration front end: accepts many named capture jobs,
/// runs them across a bounded worker pool with admission control, per-job
/// cancellation and deadlines, and lands every successful table in an LRU
/// per-user cache (see docs/SERVING.md). Failure isolation is absolute by
/// construction: the pipeline is total over non-empty captures, and the
/// worker wraps it in a catch-all, so one poisoned capture yields one
/// failed job — never a dead worker or a torn-down service.
///
/// Scale shape: users hash onto 2^k independent shards (per-shard mutex,
/// queue, and job map) over one shared worker pool, so a million-user
/// ingress stops serializing on a single service lock. Job ids encode the
/// shard in their low bits; everything else routes by id.
///
/// Observability: each job runs under a "serve.job" trace span and fills
/// its own obs::RunReport; queue depth, latency split (queue vs run), and
/// terminal-state counters live in the registry under "serve.jobs.*" /
/// "serve.queue.*", with per-shard depth and rejection instruments under
/// "serve.shard.N.*" plus a "serve.jobs.rejected_by_shard" counter so
/// shard imbalance is observable.
class CalibrationService {
 public:
  using Options = CalibrationServiceOptions;

  explicit CalibrationService(Options opts = {});
  /// Cancels everything still queued, then waits for running jobs.
  ~CalibrationService();

  CalibrationService(const CalibrationService&) = delete;
  CalibrationService& operator=(const CalibrationService&) = delete;

  /// Submit a calibration job for `userId`. Returns the job id, or
  /// kInvalidJobId when the user's shard queue is full (the capture is not
  /// retained). The capture is shared, not copied — callers batching one
  /// capture across many jobs pay for it once.
  std::uint64_t submit(std::string userId,
                       std::shared_ptr<const sim::CalibrationCapture> capture,
                       JobOptions jobOpts = {});
  /// Convenience overload that takes ownership of a capture by value.
  std::uint64_t submit(std::string userId, sim::CalibrationCapture capture,
                       JobOptions jobOpts = {});

  /// Request cancellation. True when the request can still take effect —
  /// the job was queued (cancelled immediately) or running (flagged; the
  /// pipeline stops at its next stage boundary). False when the job is
  /// already terminal or unknown.
  bool cancel(std::uint64_t id);

  /// Block until the job reaches a terminal state; returns its result.
  /// Unknown ids (including kInvalidJobId) throw InvalidArgument.
  JobResult wait(std::uint64_t id);

  /// Block until every submitted job is terminal; returns all results in
  /// submission order and forgets them (a long-lived service must not
  /// accumulate results forever).
  std::vector<JobResult> drain();

  /// The per-user table cache (shared with BatchAoaEngine).
  TableCache& cache() { return cache_; }

  std::size_t workerCount() const { return pool_.threadCount(); }
  std::size_t shardCount() const { return shards_.size(); }
  /// Jobs accepted but not yet picked up by a worker (all shards).
  std::size_t queuedCount() const;
  /// Jobs currently executing (all shards).
  std::size_t runningCount() const;

 private:
  struct Job;
  struct Shard;

  Shard& shardForUser(const std::string& userId);
  Shard& shardForId(std::uint64_t id);

  /// Ensure enough queue-drainer tasks are in flight for the shard's queued
  /// work; caller holds the shard mutex.
  void pumpLocked(Shard& shard);
  /// Drain loop body run on a pool worker: pop and execute the shard's jobs
  /// until its queue is empty.
  void drainQueue(Shard& shard);
  void executeJob(const std::shared_ptr<Job>& job);
  /// Streaming-job body: replay the capture through a StreamingSession
  /// (early-stopping on convergence, cancelling on the token) and return
  /// the finalized result.
  core::PersonalHrtf runStreaming(const std::shared_ptr<Job>& job);
  void finishJob(const std::shared_ptr<Job>& job, JobState state);

  Options opts_;
  TableCache cache_;
  core::CalibrationPipeline pipeline_;
  common::ThreadPool pool_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t shardBits_ = 0;       ///< log2(shards): id low bits
  std::size_t maxQueuedPerShard_ = 0;

  /// Global submission sequence (drives job ids and drain() ordering).
  std::atomic<std::uint64_t> nextSeq_{1};
  /// Aggregate queue depth across shards (metrics + queuedCount()).
  std::atomic<std::size_t> queuedTotal_{0};

  /// Submission order across shards, for drain(); guarded by orderMutex_.
  mutable std::mutex orderMutex_;
  std::vector<std::uint64_t> submissionOrder_;
};

}  // namespace uniq::serve
