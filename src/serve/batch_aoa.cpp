#include "serve/batch_aoa.h"

#include <map>
#include <memory>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::serve {

BatchAoaEngine::BatchAoaEngine(TableCache& cache,
                               core::AoaEstimatorOptions opts)
    : cache_(cache), opts_(opts) {
  // The engine owns the parallelism (query-level fan-out); per-query
  // parallelism would only fight it for the same pool. Template-spectrum
  // caching is the whole point of batching.
  opts_.numThreads = 1;
  opts_.cacheTemplateSpectra = true;
}

std::vector<AoaBatchItem> BatchAoaEngine::run(
    const std::vector<AoaQuery>& queries, std::size_t numThreads) const {
  UNIQ_SPAN("serve.aoa.batch");
  static obs::Counter& batches =
      obs::registry().counter("serve.aoa.batches");
  static obs::Counter& queryCount =
      obs::registry().counter("serve.aoa.queries");
  static obs::Counter& fallbackQueries =
      obs::registry().counter("serve.aoa.fallback_queries");
  batches.inc();
  queryCount.inc(queries.size());

  std::vector<AoaBatchItem> results(queries.size());
  if (queries.empty()) return results;

  // Group query indices by user: one cache lookup and one estimator per
  // user per batch (std::map for a deterministic user order).
  std::map<std::string, std::vector<std::size_t>> byUser;
  for (std::size_t i = 0; i < queries.size(); ++i)
    byUser[queries[i].userId].push_back(i);

  for (const auto& [userId, indices] : byUser) {
    const auto table = cache_.getOrFallback(userId);
    const bool personalized = cache_.contains(userId);
    if (!personalized) fallbackQueries.inc(indices.size());
    const core::AoaEstimator estimator(table->farTable(), opts_);
    common::parallelFor(
        0, indices.size(),
        [&](std::size_t k) {
          const auto& q = queries[indices[k]];
          auto& out = results[indices[k]];
          const double startUs = obs::nowUs();
          out.estimate =
              q.source.empty()
                  ? estimator.estimateUnknown(q.left, q.right)
                  : estimator.estimateKnown(q.left, q.right, q.source);
          out.personalized = personalized;
          obs::registry()
              .histogram("serve.aoa.query_ms",
                         obs::HistogramOptions{0.1, 2.0, 24})
              .observe((obs::nowUs() - startUs) / 1000.0);
        },
        numThreads);
  }
  return results;
}

}  // namespace uniq::serve
