#pragma once

#include <cmath>

namespace uniq::geo {

/// Plain 2D vector/point. The whole UNIQ geometry is 2D (top view of the
/// head); the paper's prototype likewise estimates the 2D HRTF (Section 7).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double xx, double yy) : x(xx), y(yy) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  double norm() const { return std::sqrt(x * x + y * y); }
  constexpr double normSquared() const { return x * x + y * y; }

  Vec2 normalized() const {
    const double n = norm();
    return n > 0 ? Vec2{x / n, y / n} : Vec2{0, 0};
  }

  /// 90-degree counter-clockwise rotation.
  constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

constexpr double dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// z-component of the 3D cross product (a.x, a.y, 0) x (b.x, b.y, 0).
constexpr double cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

inline Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

}  // namespace uniq::geo
