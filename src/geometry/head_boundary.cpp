#include "geometry/head_boundary.h"

#include <algorithm>
#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "dsp/kernels/kernels.h"

namespace uniq::geo {

namespace {

/// Boundary point for parameter t in [0, 2*pi): front half-ellipse (a, b)
/// for t in (0, pi), back half-ellipse (a, c) for t in (pi, 2*pi).
Vec2 boundaryPoint(double a, double b, double c, double t) {
  const double s = std::sin(t);
  const double semiY = s >= 0.0 ? b : c;
  return {a * std::cos(t), semiY * s};
}

/// Outward unit normal at parameter t. For an axis-aligned ellipse
/// (a, e) the (unnormalized) outward normal at (a cos t, e sin t) is
/// (e cos t, a sin t).
Vec2 boundaryNormal(double a, double b, double c, double t) {
  const double s = std::sin(t);
  const double semiY = s >= 0.0 ? b : c;
  Vec2 n{semiY * std::cos(t), a * s};
  return n.normalized();
}

}  // namespace

HeadBoundary::HeadBoundary(double a, double b, double c,
                           std::size_t resolution)
    : HeadBoundary(a, b, c, {}, resolution) {}

HeadBoundary::HeadBoundary(double a, double b, double c,
                           const std::vector<BoundaryHarmonic>& harmonics,
                           std::size_t resolution)
    : a_(a),
      b_(b),
      c_(c),
      invA2_(1.0 / (a * a)),
      invB2_(1.0 / (b * b)),
      invC2_(1.0 / (c * c)) {
  UNIQ_REQUIRE(a > 0 && b > 0 && c > 0, "head axes must be positive");
  UNIQ_REQUIRE(resolution >= 16 && resolution % 2 == 0,
               "resolution must be even and >= 16");
  points_.resize(resolution);
  normals_.resize(resolution);
  cumArc_.resize(resolution + 1);
  for (std::size_t i = 0; i < resolution; ++i) {
    const double t = kTwoPi * static_cast<double>(i) /
                     static_cast<double>(resolution);
    Vec2 p = boundaryPoint(a, b, c, t);
    if (!harmonics.empty()) {
      double scale = 1.0;
      for (const auto& h : harmonics)
        scale += h.amplitude * std::cos(h.order * t + h.phaseRad);
      // Fade the perturbation out near the ears (t = 0, pi) so the ear
      // junction points stay exactly at (+/-a, 0).
      const double window = square(std::sin(t));
      p = p * (1.0 + (scale - 1.0) * window);
    }
    points_[i] = p;
  }
  if (harmonics.empty()) {
    for (std::size_t i = 0; i < resolution; ++i) {
      const double t = kTwoPi * static_cast<double>(i) /
                       static_cast<double>(resolution);
      normals_[i] = boundaryNormal(a, b, c, t);
    }
  } else {
    // Numeric outward normals from central-difference tangents (boundary is
    // counter-clockwise, so outward = rotate tangent by -90 degrees).
    for (std::size_t i = 0; i < resolution; ++i) {
      const Vec2 prev = points_[(i + resolution - 1) % resolution];
      const Vec2 next = points_[(i + 1) % resolution];
      const Vec2 tangent = (next - prev).normalized();
      normals_[i] = Vec2{tangent.y, -tangent.x};
    }
  }
  cumArc_[0] = 0.0;
  for (std::size_t i = 0; i < resolution; ++i) {
    const Vec2 next = points_[(i + 1) % resolution];
    cumArc_[i + 1] = cumArc_[i] + distance(points_[i], next);
  }
  totalArc_ = cumArc_[resolution];
  nx_.resize(resolution);
  ny_.resize(resolution);
  cdot_.resize(resolution);
  for (std::size_t i = 0; i < resolution; ++i) {
    nx_[i] = normals_[i].x;
    ny_[i] = normals_[i].y;
    cdot_[i] = dot(points_[i], normals_[i]);
  }
  tangents_.resize(resolution);
  for (std::size_t i = 0; i < resolution; ++i) {
    const Vec2 prev = points_[(i + resolution - 1) % resolution];
    const Vec2 next = points_[(i + 1) % resolution];
    tangents_[i] = (next - prev).normalized();
  }
}

Vec2 HeadBoundary::pointAt(double u) const {
  const auto n = static_cast<double>(size());
  const double w = wrapRingIndex(u, n);
  const auto i = static_cast<std::size_t>(w);
  const double f = w - static_cast<double>(i);
  const Vec2 p0 = points_[i];
  const Vec2 p1 = points_[(i + 1) % size()];
  return lerp(p0, p1, f);
}

double HeadBoundary::arcForward(double u1, double u2) const {
  const auto n = static_cast<double>(size());
  auto arcAt = [&](double u) {
    const double w = wrapRingIndex(u, n);
    const auto i = static_cast<std::size_t>(w);
    const double f = w - static_cast<double>(i);
    return cumArc_[i] + f * (cumArc_[i + 1] - cumArc_[i]);
  };
  double d = arcAt(u2) - arcAt(u1);
  if (d < 0) d += totalArc_;
  return d;
}

double HeadBoundary::arcShortest(double u1, double u2) const {
  const double f = arcForward(u1, u2);
  return std::min(f, totalArc_ - f);
}

double HeadBoundary::visibilityValue(Vec2 p, std::size_t i) const {
  return dot(points_[i] - p, normals_[i]);
}

HeadBoundary::TangentPair HeadBoundary::tangentsFrom(Vec2 p) const {
  UNIQ_REQUIRE(!isInside(p), "tangentsFrom requires an external point");
  dsp::kernels::VisibilityCrossing crossings[2];
  const int found = dsp::kernels::visibilityCrossings(
      nx_.data(), ny_.data(), cdot_.data(), size(), p.x, p.y, crossings, 2);
  UNIQ_CHECK(found == 2, "expected exactly two tangency points");
  return {crossings[0].u, crossings[1].u};
}

HeadBoundary::TangentPair HeadBoundary::terminators(Vec2 direction) const {
  const Vec2 d = direction.normalized();
  UNIQ_REQUIRE(d.norm() > 0.5, "direction must be non-zero");
  dsp::kernels::VisibilityCrossing crossings[2];
  const int found = dsp::kernels::visibilityCrossings(
      nx_.data(), ny_.data(), /*cdot=*/nullptr, size(), d.x, d.y, crossings,
      2);
  UNIQ_CHECK(found == 2, "expected exactly two terminator points");
  return {crossings[0].u, crossings[1].u};
}

double HeadBoundary::indexWithNormal(Vec2 nrm) const {
  const Vec2 target = nrm.normalized();
  std::size_t best = 0;
  double bestDot = -2.0;
  for (std::size_t i = 0; i < size(); ++i) {
    const double d = dot(target, normals_[i]);
    if (d > bestDot) {
      bestDot = d;
      best = i;
    }
  }
  return static_cast<double>(best);
}

}  // namespace uniq::geo
