#pragma once

#include "common/math_util.h"
#include "geometry/vec2.h"

namespace uniq::geo {

/// Azimuth convention used throughout UNIQ (matching the paper's
/// measurement sweeps): theta = 0 deg points at the nose (+y), theta grows
/// toward the user's LEFT side, theta = 90 deg is the left-ear direction
/// (-x), theta = 180 deg points at the back of the head (-y). The paper's
/// experiments sweep theta in [0, 180] on the left semicircle.
inline Vec2 directionFromAzimuthDeg(double thetaDeg) {
  const double t = degToRad(thetaDeg);
  return {-std::sin(t), std::cos(t)};
}

/// Point at polar coordinates (azimuth degrees, radius meters) around the
/// head center (origin).
inline Vec2 pointFromPolarDeg(double thetaDeg, double radius) {
  return directionFromAzimuthDeg(thetaDeg) * radius;
}

/// Azimuth in degrees of a point (inverse of pointFromPolarDeg), wrapped to
/// (-180, 180].
inline double azimuthDegOfPoint(Vec2 p) {
  // direction = (-sin t, cos t)  =>  t = atan2(-x, y)
  return radToDeg(std::atan2(-p.x, p.y));
}

/// Polar radius (distance from head center).
inline double radiusOfPoint(Vec2 p) { return p.norm(); }

}  // namespace uniq::geo
