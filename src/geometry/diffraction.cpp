#include "geometry/diffraction.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uniq::geo {

namespace {

double forwardIndexDistance(double from, double to, double n) {
  // Both operands are ring indices in [0, n), so the difference is one
  // conditional add away from range — wrapRingIndex keeps exact fmod
  // semantics without the fmod.
  return wrapRingIndex(to - from, n);
}

/// True when walking forward (increasing index) from `from` to `to` passes
/// through `via` (all continuous indices on a ring of n samples).
bool forwardArcContains(double from, double to, double via, double n) {
  return forwardIndexDistance(from, via, n) < forwardIndexDistance(from, to, n);
}

struct CreepCandidate {
  double total = 0.0;
  double arc = 0.0;
  Vec2 tangentPoint{};
  bool arrivesForward = false;  // travel at the ear is in +index direction
  bool valid = false;
};

CreepCandidate creepVia(const HeadBoundary& head, double uTangent,
                        double uOther, double earIdx, double straightLen,
                        Vec2 tangentPoint) {
  const auto n = static_cast<double>(head.size());
  CreepCandidate c;
  c.tangentPoint = tangentPoint;
  // The surface arc from the tangency point to the ear must stay inside the
  // shadow region, i.e. must not pass the other tangency point.
  if (!forwardArcContains(uTangent, earIdx, uOther, n)) {
    c.arc = head.arcForward(uTangent, earIdx);
    c.arrivesForward = true;
    c.valid = true;
  } else if (!forwardArcContains(earIdx, uTangent, uOther, n)) {
    c.arc = head.arcForward(earIdx, uTangent);
    c.arrivesForward = false;
    c.valid = true;
  }
  c.total = straightLen + c.arc;
  return c;
}

DiffractionPath resolveCreep(const HeadBoundary& head, Ear ear,
                             const CreepCandidate& c) {
  const std::size_t earIdx =
      ear == Ear::kLeft ? head.leftEarIndex() : head.rightEarIndex();
  DiffractionPath path;
  path.length = c.total;
  path.arcLength = c.arc;
  path.diffracted = true;
  path.tangentPoint = c.tangentPoint;
  const Vec2 fwd = head.forwardTangent(earIdx);
  path.arrivalDirection = c.arrivesForward ? fwd : -fwd;
  return path;
}

}  // namespace

Vec2 earPosition(const HeadBoundary& head, Ear ear) {
  return ear == Ear::kLeft ? head.leftEar() : head.rightEar();
}

DiffractionPath nearFieldPath(const HeadBoundary& head, Vec2 source,
                              Ear ear) {
  UNIQ_REQUIRE(!head.isInside(source), "source must be outside the head");
  const std::size_t earIdx =
      ear == Ear::kLeft ? head.leftEarIndex() : head.rightEarIndex();
  const Vec2 earPt = earPosition(head, ear);

  // Ear directly visible? (outward normal at the ear faces the source)
  if (head.visibilityValue(source, earIdx) < 0.0) {
    DiffractionPath path;
    path.length = distance(source, earPt);
    path.diffracted = false;
    path.arrivalDirection = (earPt - source).normalized();
    return path;
  }

  const auto tangents = head.tangentsFrom(source);
  const Vec2 t1 = head.pointAt(tangents.u1);
  const Vec2 t2 = head.pointAt(tangents.u2);
  const auto eIdx = static_cast<double>(earIdx);
  const auto c1 = creepVia(head, tangents.u1, tangents.u2, eIdx,
                           distance(source, t1), t1);
  const auto c2 = creepVia(head, tangents.u2, tangents.u1, eIdx,
                           distance(source, t2), t2);
  UNIQ_CHECK(c1.valid || c2.valid, "no valid creeping path found");
  const CreepCandidate& best =
      !c2.valid || (c1.valid && c1.total <= c2.total) ? c1 : c2;
  return resolveCreep(head, ear, best);
}

DiffractionPath farFieldPath(const HeadBoundary& head, Vec2 direction,
                             Ear ear) {
  const Vec2 d = direction.normalized();
  UNIQ_REQUIRE(d.norm() > 0.5, "direction must be non-zero");
  const std::size_t earIdx =
      ear == Ear::kLeft ? head.leftEarIndex() : head.rightEarIndex();
  const Vec2 earPt = earPosition(head, ear);

  // Lit ear: the incident wave reaches the ear directly.
  if (dot(d, head.normal(earIdx)) < 0.0) {
    DiffractionPath path;
    path.length = dot(d, earPt);  // relative to wavefront through the origin
    path.diffracted = false;
    path.arrivalDirection = d;
    return path;
  }

  const auto terms = head.terminators(d);
  const Vec2 t1 = head.pointAt(terms.u1);
  const Vec2 t2 = head.pointAt(terms.u2);
  const auto eIdx = static_cast<double>(earIdx);
  const auto c1 = creepVia(head, terms.u1, terms.u2, eIdx, dot(d, t1), t1);
  const auto c2 = creepVia(head, terms.u2, terms.u1, eIdx, dot(d, t2), t2);
  UNIQ_CHECK(c1.valid || c2.valid, "no valid creeping path found");
  const CreepCandidate& best =
      !c2.valid || (c1.valid && c1.total <= c2.total) ? c1 : c2;
  return resolveCreep(head, ear, best);
}

}  // namespace uniq::geo
