#pragma once

#include "geometry/head_boundary.h"
#include "geometry/vec2.h"

namespace uniq::geo {

/// Which ear a path terminates at.
enum class Ear { kLeft, kRight };

/// Result of a shortest acoustic path query around the head. Audible sound
/// does not penetrate the head (paper Section 2, Figure 5): when the
/// straight segment from the source to an ear would cut through the head,
/// the sound instead travels straight to a tangency point and then creeps
/// along the head surface (diffraction) to the ear.
struct DiffractionPath {
  double length = 0.0;       ///< total path length, meters
  double arcLength = 0.0;    ///< portion travelled along the head surface
  bool diffracted = false;   ///< false = direct line of sight
  Vec2 tangentPoint{};       ///< where the path meets the head (if diffracted)
  Vec2 arrivalDirection{};   ///< unit propagation direction at the ear
};

/// Shortest path from an external point source to an ear (near field).
DiffractionPath nearFieldPath(const HeadBoundary& head, Vec2 source, Ear ear);

/// Far-field (plane wave) path for propagation direction `direction`
/// (unit vector pointing from the distant source toward the head).
/// `length` is the path length relative to the wavefront passing through
/// the head center — it can be negative for the lit ear (the wave reaches
/// the near ear before the head center). arcLength and arrivalDirection
/// have the same meaning as in the near-field query.
DiffractionPath farFieldPath(const HeadBoundary& head, Vec2 direction,
                             Ear ear);

/// Ear position helper.
Vec2 earPosition(const HeadBoundary& head, Ear ear);

}  // namespace uniq::geo
