#pragma once

#include <cmath>
#include <cstddef>
#include <vector>


#include "geometry/vec2.h"

namespace uniq::geo {

/// Wrap a continuous ring index into [0, n). Exact fmod semantics, but the
/// common cases (already in range, or one period out — every caller in the
/// diffraction hot path) take a compare instead of an fmod.
inline double wrapRingIndex(double u, double n) {
  if (u >= 0.0 && u < n) return u;
  double w;
  if (u >= n && u < 2.0 * n) {
    w = u - n;  // exact (Sterbenz)
  } else if (u < 0.0 && u >= -n) {
    w = u + n;
  } else {
    w = std::fmod(u, n);
    if (w < 0.0) w += n;
  }
  // u + n rounds up to exactly n when u is a tiny negative value; keep the
  // contract w < n so integer truncation never indexes one past the table.
  return w < n ? w : 0.0;
}

/// Discretized boundary of the paper's head model: two half-ellipses joined
/// at the ear line (Section 4.1, Figure 8). The front half (y > 0) has
/// semi-axes (a, b); the back half (y < 0) has semi-axes (a, c); the ears
/// sit exactly at (+a, 0) (right) and (-a, 0) (left).
///
/// The boundary is sampled at `resolution` points (even, so that both ears
/// fall exactly on samples); tangency and terminator queries interpolate
/// between samples, so the effective angular resolution is much finer than
/// the sample count.
/// Low-order radial perturbation of the ideal two-half-ellipse outline.
/// Real heads are not exactly in the paper's 3-parameter family; the
/// simulation substrate perturbs the true head with a few harmonics so the
/// estimator faces genuine model mismatch ("imperfection of the acoustic
/// diffraction model also partly contributes to the errors", Section 5.1).
struct BoundaryHarmonic {
  int order = 2;        ///< angular frequency (cycles per revolution)
  double amplitude = 0; ///< relative radial amplitude (e.g. 0.01 = 1%)
  double phaseRad = 0;
};

class HeadBoundary {
 public:
  /// a: half ear-to-ear width; b: nose depth; c: back-of-head depth
  /// (all meters, all > 0).
  HeadBoundary(double a, double b, double c, std::size_t resolution = 256);

  /// Perturbed boundary: radius scaled by 1 + sum_k amp_k*cos(k*t+phase_k).
  /// Ear positions are kept exact (the perturbation is windowed out near
  /// the ears so the junction points stay at +/-(a, 0)).
  HeadBoundary(double a, double b, double c,
               const std::vector<BoundaryHarmonic>& harmonics,
               std::size_t resolution);

  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }

  std::size_t size() const { return points_.size(); }
  Vec2 point(std::size_t i) const { return points_[i]; }
  /// Outward unit normal at sample i.
  Vec2 normal(std::size_t i) const { return normals_[i]; }
  /// Unit boundary tangent at sample i pointing in the direction of
  /// increasing index, i.e. normalize(point(i+1) - point(i-1)) (wrapping).
  /// Precomputed — the diffraction hot path reads it per evaluation.
  Vec2 forwardTangent(std::size_t i) const { return tangents_[i]; }

  std::size_t rightEarIndex() const { return 0; }
  std::size_t leftEarIndex() const { return size() / 2; }
  Vec2 rightEar() const { return {a_, 0.0}; }
  Vec2 leftEar() const { return {-a_, 0.0}; }

  /// Total boundary perimeter (meters).
  double perimeter() const { return totalArc_; }

  /// Boundary point at a continuous sample index u in [0, size()).
  Vec2 pointAt(double u) const;

  /// Arc length from continuous index u1 to u2 walking in the direction of
  /// increasing index (wrapping). Always >= 0.
  double arcForward(double u1, double u2) const;

  /// Shorter of the two arcs between u1 and u2.
  double arcShortest(double u1, double u2) const;

  /// True when p is strictly inside the head. Division-free: the ellipse
  /// test uses precomputed reciprocal squared semi-axes (called several
  /// times per path evaluation in the localizer's inner loop).
  bool isInside(Vec2 p) const {
    const double inv = p.y >= 0.0 ? invB2_ : invC2_;
    return p.x * p.x * invA2_ + p.y * p.y * inv < 1.0;
  }

  /// Visibility classifier value at sample i for an external point P:
  /// g = dot(point(i) - P, normal(i)). Negative means the sample faces P
  /// (is directly visible); zero is the tangency condition.
  double visibilityValue(Vec2 p, std::size_t i) const;

  /// The two tangency points of the boundary as seen from external point P,
  /// as continuous sample indices (interpolated zero crossings of the
  /// visibility value). Exactly two for this convex shape.
  struct TangentPair {
    double u1 = 0.0;
    double u2 = 0.0;
  };
  TangentPair tangentsFrom(Vec2 p) const;

  /// The two terminator points (shadow boundary) for a plane wave with
  /// propagation direction d (unit vector, source -> head): continuous
  /// indices where dot(d, normal) == 0.
  TangentPair terminators(Vec2 direction) const;

  /// Continuous index of the boundary point whose outward normal is closest
  /// to `n` (used to find the "crown" point Q of the near-far conversion,
  /// Section 4.3 / Figure 12).
  double indexWithNormal(Vec2 n) const;

 private:
  double a_, b_, c_;
  double invA2_ = 0.0, invB2_ = 0.0, invC2_ = 0.0;  // 1/a^2, 1/b^2, 1/c^2
  std::vector<Vec2> points_;
  std::vector<Vec2> normals_;
  std::vector<Vec2> tangents_;  // forward tangents, see forwardTangent()
  std::vector<double> cumArc_;  // cumArc_[i] = arc length from sample 0 to i
  double totalArc_ = 0.0;
  // SoA mirrors of the normal table for the vectorized visibility scan
  // (dsp/kernels): nx_/ny_ are the normal components, cdot_[i] is the
  // precomputed dot(point(i), normal(i)), so the classifier
  // g_i = dot(point(i) - P, normal(i)) becomes cdot_[i] - Px*nx_[i] -
  // Py*ny_[i] — three streaming multiply-adds per sample.
  std::vector<double> nx_;
  std::vector<double> ny_;
  std::vector<double> cdot_;
};

}  // namespace uniq::geo
