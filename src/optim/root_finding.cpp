#include "optim/root_finding.h"

#include <cmath>
#include <vector>

#include "common/error.h"

namespace uniq::optim {

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opts) {
  UNIQ_REQUIRE(lo < hi, "bisect needs lo < hi");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  UNIQ_CHECK((flo < 0) != (fhi < 0), "bisect bracket does not change sign");
  for (std::size_t i = 0; i < opts.maxIterations && hi - lo > opts.xTolerance;
       ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((fmid < 0) == (flo < 0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opts) {
  UNIQ_REQUIRE(lo < hi, "brent needs lo < hi");
  return brentBracketed(f, lo, hi, f(lo), f(hi), opts);
}

std::vector<double> findAllRoots(const std::function<double(double)>& f,
                                 double lo, double hi, std::size_t steps,
                                 const RootOptions& opts) {
  UNIQ_REQUIRE(lo < hi && steps >= 1, "bad scan parameters");
  std::vector<double> roots;
  double xPrev = lo;
  double fPrev = f(lo);
  for (std::size_t i = 1; i <= steps; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) /
                              static_cast<double>(steps);
    const double fx = f(x);
    if (fPrev == 0.0) {
      roots.push_back(xPrev);
    } else if ((fPrev < 0) != (fx < 0)) {
      roots.push_back(brent(f, xPrev, x, opts));
    }
    xPrev = x;
    fPrev = fx;
  }
  if (fPrev == 0.0) roots.push_back(xPrev);
  return roots;
}

}  // namespace uniq::optim
