#pragma once

#include <cmath>
#include <functional>
#include <optional>
#include <utility>

#include "common/error.h"

namespace uniq::optim {

/// Options for 1-D root finding.
struct RootOptions {
  double xTolerance = 1e-10;
  std::size_t maxIterations = 100;
};

/// Brent's method when the caller has ALREADY evaluated the endpoints
/// (fa = f(lo), fb = f(hi)). Header template so hot callers (the
/// localizer's radius solve evaluates its bracket to test solvability
/// first) pay neither the two redundant endpoint evaluations nor a
/// std::function indirection. Identical iteration sequence to brent().
template <class F>
double brentBracketed(F&& f, double lo, double hi, double flo, double fhi,
                      const RootOptions& opts = {}) {
  UNIQ_REQUIRE(lo < hi, "brent needs lo < hi");
  double a = lo, b = hi;
  double fa = flo, fb = fhi;
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  UNIQ_CHECK((fa < 0) != (fb < 0), "brent bracket does not change sign");
  if (std::fabs(fa) < std::fabs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool usedBisection = true;
  double d = 0.0;
  for (std::size_t i = 0; i < opts.maxIterations; ++i) {
    if (std::fabs(b - a) < opts.xTolerance || fb == 0.0) return b;
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }
    const double m = 0.5 * (a + b);
    const bool cond =
        (s < std::min(m, b) || s > std::max(m, b)) ||
        (usedBisection && std::fabs(s - b) >= std::fabs(b - c) / 2) ||
        (!usedBisection && std::fabs(s - b) >= std::fabs(c - d) / 2);
    if (cond) {
      s = m;
      usedBisection = true;
    } else {
      usedBisection = false;
    }
    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if ((fa < 0) != (fs < 0)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::fabs(fa) < std::fabs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  return b;
}

/// Bisection on [lo, hi]; requires f(lo) and f(hi) to have opposite signs.
/// Returns the root. Throws NumericalFailure when the bracket is invalid.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opts = {});

/// Brent's method (inverse-quadratic + secant + bisection fallback) on a
/// bracketing interval [lo, hi]. Faster convergence than plain bisection.
double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opts = {});

/// Scan [lo, hi] in `steps` uniform intervals and return each sub-interval
/// [x_i, x_{i+1}] where f changes sign, refined by Brent. Useful for
/// collecting all roots of a scalar function (UNIQ's iso-delay curve
/// intersection can have a front and a back solution).
std::vector<double> findAllRoots(const std::function<double(double)>& f,
                                 double lo, double hi, std::size_t steps,
                                 const RootOptions& opts = {});

}  // namespace uniq::optim
