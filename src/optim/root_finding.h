#pragma once

#include <functional>
#include <optional>

namespace uniq::optim {

/// Options for 1-D root finding.
struct RootOptions {
  double xTolerance = 1e-10;
  std::size_t maxIterations = 100;
};

/// Bisection on [lo, hi]; requires f(lo) and f(hi) to have opposite signs.
/// Returns the root. Throws NumericalFailure when the bracket is invalid.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opts = {});

/// Brent's method (inverse-quadratic + secant + bisection fallback) on a
/// bracketing interval [lo, hi]. Faster convergence than plain bisection.
double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opts = {});

/// Scan [lo, hi] in `steps` uniform intervals and return each sub-interval
/// [x_i, x_{i+1}] where f changes sign, refined by Brent. Useful for
/// collecting all roots of a scalar function (UNIQ's iso-delay curve
/// intersection can have a front and a back solution).
std::vector<double> findAllRoots(const std::function<double(double)>& f,
                                 double lo, double hi, std::size_t steps,
                                 const RootOptions& opts = {});

}  // namespace uniq::optim
