#include "optim/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace uniq::optim {

MinimizeResult nelderMead(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<double>& x0, const NelderMeadOptions& opts) {
  UNIQ_REQUIRE(!x0.empty(), "nelderMead needs at least one dimension");
  const std::size_t n = x0.size();

  // Standard coefficients.
  const double alpha = 1.0;   // reflection
  const double gamma = 2.0;   // expansion
  const double rho = 0.5;     // contraction
  const double sigma = 0.5;   // shrink

  struct Vertex {
    std::vector<double> x;
    double fx;
  };
  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  simplex.push_back({x0, f(x0)});
  for (std::size_t i = 0; i < n; ++i) {
    auto x = x0;
    x[i] += opts.initialStep;
    simplex.push_back({x, f(x)});
  }

  auto sortSimplex = [&] {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.fx < b.fx; });
  };
  sortSimplex();

  MinimizeResult result;
  std::size_t iter = 0;
  for (; iter < opts.maxIterations; ++iter) {
    // Convergence checks.
    const double fSpread = simplex.back().fx - simplex.front().fx;
    double xSpread = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      xSpread = std::max(
          xSpread, std::fabs(simplex.back().x[i] - simplex.front().x[i]));
    }
    if (fSpread < opts.fTolerance && xSpread < opts.xTolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[v].x[i];
    for (auto& c : centroid) c /= static_cast<double>(n);

    const Vertex& worst = simplex.back();
    std::vector<double> reflected(n);
    for (std::size_t i = 0; i < n; ++i)
      reflected[i] = centroid[i] + alpha * (centroid[i] - worst.x[i]);
    const double fReflected = f(reflected);

    if (fReflected < simplex.front().fx) {
      // Try expansion.
      std::vector<double> expanded(n);
      for (std::size_t i = 0; i < n; ++i)
        expanded[i] = centroid[i] + gamma * (reflected[i] - centroid[i]);
      const double fExpanded = f(expanded);
      if (fExpanded < fReflected) {
        simplex.back() = {std::move(expanded), fExpanded};
      } else {
        simplex.back() = {std::move(reflected), fReflected};
      }
    } else if (fReflected < simplex[n - 1].fx) {
      simplex.back() = {std::move(reflected), fReflected};
    } else {
      // Contraction (outside if reflected better than worst, else inside).
      const bool outside = fReflected < worst.fx;
      std::vector<double> contracted(n);
      const auto& towards = outside ? reflected : worst.x;
      for (std::size_t i = 0; i < n; ++i)
        contracted[i] = centroid[i] + rho * (towards[i] - centroid[i]);
      const double fContracted = f(contracted);
      if (fContracted < (outside ? fReflected : worst.fx)) {
        simplex.back() = {std::move(contracted), fContracted};
      } else {
        // Shrink toward the best vertex.
        for (std::size_t v = 1; v <= n; ++v) {
          for (std::size_t i = 0; i < n; ++i) {
            simplex[v].x[i] = simplex[0].x[i] +
                              sigma * (simplex[v].x[i] - simplex[0].x[i]);
          }
          simplex[v].fx = f(simplex[v].x);
        }
      }
    }
    sortSimplex();
  }

  result.x = simplex.front().x;
  result.fValue = simplex.front().fx;
  result.iterations = iter;
  return result;
}

}  // namespace uniq::optim
