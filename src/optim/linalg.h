#pragma once

#include <cstddef>
#include <vector>

namespace uniq::optim {

/// Dense row-major real matrix, minimal interface for the library's small
/// linear-algebra needs (the Section 4.3 decomposition study works with
/// matrices of a few dozen rows/columns).
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Matrix transposed() const;

  /// this * other.
  Matrix multiply(const Matrix& other) const;

  /// this * vector.
  std::vector<double> apply(const std::vector<double>& v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Eigenvalues of a symmetric matrix via the cyclic Jacobi method, sorted
/// descending. The input must be square and (numerically) symmetric.
std::vector<double> symmetricEigenvalues(const Matrix& m,
                                         std::size_t maxSweeps = 50);

/// Singular values of an arbitrary matrix (square roots of the eigenvalues
/// of A^T A), sorted descending.
std::vector<double> singularValues(const Matrix& a);

/// 2-norm condition number sigma_max / sigma_min (infinity if the smallest
/// singular value is ~0).
double conditionNumber(const Matrix& a);

/// Numerical rank: number of singular values above
/// relativeTolerance * sigma_max.
std::size_t numericalRank(const Matrix& a, double relativeTolerance = 1e-9);

/// Solve min ||A x - b||^2 + lambda ||x||^2 via the normal equations with
/// Gaussian elimination (partial pivoting). lambda = 0 gives plain least
/// squares; a small lambda regularizes rank-deficient systems.
std::vector<double> solveLeastSquares(const Matrix& a,
                                      const std::vector<double>& b,
                                      double lambda = 0.0);

/// Solve the square linear system M x = y (partial-pivot Gaussian
/// elimination). Throws NumericalFailure on a singular pivot.
std::vector<double> solveLinear(Matrix m, std::vector<double> y);

}  // namespace uniq::optim
