#include "optim/linalg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace uniq::optim {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  UNIQ_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

double& Matrix::at(std::size_t r, std::size_t c) {
  UNIQ_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  UNIQ_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  UNIQ_REQUIRE(cols_ == other.rows_, "matrix dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = at(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c)
        out.at(r, c) += v * other.at(k, c);
    }
  }
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  UNIQ_REQUIRE(v.size() == cols_, "vector dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out[r] += at(r, c) * v[c];
  return out;
}

std::vector<double> symmetricEigenvalues(const Matrix& m,
                                         std::size_t maxSweeps) {
  UNIQ_REQUIRE(m.rows() == m.cols(), "matrix must be square");
  const std::size_t n = m.rows();
  Matrix a = m;
  for (std::size_t sweep = 0; sweep < maxSweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a.at(p, q) * a.at(p, q);
    if (off < 1e-22) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.at(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a.at(p, p);
        const double aqq = a.at(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::fabs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a.at(k, p);
          const double akq = a.at(k, q);
          a.at(k, p) = c * akp - s * akq;
          a.at(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a.at(p, k);
          const double aqk = a.at(q, k);
          a.at(p, k) = c * apk - s * aqk;
          a.at(q, k) = s * apk + c * aqk;
        }
      }
    }
  }
  std::vector<double> eig(n);
  for (std::size_t i = 0; i < n; ++i) eig[i] = a.at(i, i);
  std::sort(eig.begin(), eig.end(), std::greater<>());
  return eig;
}

std::vector<double> singularValues(const Matrix& a) {
  const Matrix ata = a.transposed().multiply(a);
  auto eig = symmetricEigenvalues(ata);
  for (auto& v : eig) v = std::sqrt(std::max(v, 0.0));
  return eig;
}

std::size_t numericalRank(const Matrix& a, double relativeTolerance) {
  const auto sv = singularValues(a);
  if (sv.empty() || sv.front() <= 0.0) return 0;
  const double cutoff = sv.front() * relativeTolerance;
  std::size_t rank = 0;
  for (double s : sv)
    if (s > cutoff) ++rank;
  return rank;
}

double conditionNumber(const Matrix& a) {
  const auto sv = singularValues(a);
  UNIQ_CHECK(!sv.empty(), "no singular values");
  const double smax = sv.front();
  const double smin = sv.back();
  if (smin < smax * 1e-15 || smin <= 0.0)
    return std::numeric_limits<double>::infinity();
  return smax / smin;
}

std::vector<double> solveLinear(Matrix m, std::vector<double> y) {
  UNIQ_REQUIRE(m.rows() == m.cols() && y.size() == m.rows(),
               "solveLinear needs a square system");
  const std::size_t n = m.rows();
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::fabs(m.at(r, col)) > std::fabs(m.at(pivot, col))) pivot = r;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(m.at(col, c), m.at(pivot, c));
      std::swap(y[col], y[pivot]);
    }
    const double p = m.at(col, col);
    UNIQ_CHECK(std::fabs(p) > 1e-300, "singular system");
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = m.at(r, col) / p;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c)
        m.at(r, c) -= f * m.at(col, c);
      y[r] -= f * y[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double acc = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= m.at(ri, c) * x[c];
    x[ri] = acc / m.at(ri, ri);
  }
  return x;
}

std::vector<double> solveLeastSquares(const Matrix& a,
                                      const std::vector<double>& b,
                                      double lambda) {
  UNIQ_REQUIRE(b.size() == a.rows(), "rhs dimension mismatch");
  UNIQ_REQUIRE(lambda >= 0, "lambda must be >= 0");
  const Matrix at = a.transposed();
  Matrix normal = at.multiply(a);
  for (std::size_t i = 0; i < normal.rows(); ++i)
    normal.at(i, i) += lambda;
  const auto rhs = at.apply(b);
  return solveLinear(normal, rhs);
}

}  // namespace uniq::optim
