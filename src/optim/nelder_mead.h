#pragma once

#include <functional>
#include <vector>

namespace uniq::optim {

/// Options for the Nelder-Mead simplex minimizer.
struct NelderMeadOptions {
  std::size_t maxIterations = 300;
  /// Stop when the simplex's function-value spread falls below this.
  double fTolerance = 1e-10;
  /// Stop when the simplex's largest vertex distance falls below this.
  double xTolerance = 1e-9;
  /// Initial simplex step per dimension (relative steps are the caller's
  /// responsibility; this is an absolute perturbation added per coordinate).
  double initialStep = 0.01;
};

/// Result of a minimization.
struct MinimizeResult {
  std::vector<double> x;
  double fValue = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Derivative-free Nelder-Mead simplex minimization of f over R^n starting
/// from x0. Used by UNIQ's sensor-fusion module to minimize the IMU-vs-
/// acoustic angle disagreement over the head parameters E = (a, b, c)
/// (paper Eq. 2).
MinimizeResult nelderMead(const std::function<double(const std::vector<double>&)>& f,
                          const std::vector<double>& x0,
                          const NelderMeadOptions& opts = {});

}  // namespace uniq::optim
