#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace uniq::stream {

/// Bounded thread-safe FIFO connecting two dataflow nodes (the message-flow
/// edge of docs/STREAMING.md, modeled on maplab's rovioli datasource-flow).
/// `push` blocks while the queue is full — backpressure, so a fast producer
/// (the phone streaming stops) can never outrun a slow consumer unbounded —
/// and `pop` blocks while it is empty. `close()` ends the stream: pending
/// items still drain, further pushes are refused, and a pop on a closed,
/// empty queue returns false, which is the consumer's shutdown signal.
///
/// When constructed with a name, the queue exports its live depth as the
/// gauge `stream.queue_depth.<name>` and its high-water mark as
/// `stream.queue_depth.<name>.max`.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, const std::string& name = "")
      : capacity_(capacity == 0 ? 1 : capacity) {
    if (!name.empty()) {
      depth_ = &obs::registry().gauge("stream.queue_depth." + name);
      maxDepth_ = &obs::registry().gauge("stream.queue_depth." + name + ".max");
    }
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while full. Returns false (and drops `item`) when the queue was
  /// closed before space appeared.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock,
                  [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (depth_) {
      depth_->add(1.0);
      maxDepth_->setMax(static_cast<double>(items_.size()));
    }
    notEmpty_.notify_one();
    return true;
  }

  /// Blocks while empty and open. Returns false when the queue is closed
  /// and fully drained — the consumer's signal to exit its loop.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    if (depth_) depth_->add(-1.0);
    notFull_.notify_one();
    return true;
  }

  /// End of stream: pending items still drain, new pushes are refused, and
  /// blocked producers/consumers wake up. Idempotent.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Snapshot depth (observability; racy by nature).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<T> items_;
  bool closed_ = false;
  obs::Gauge* depth_ = nullptr;
  obs::Gauge* maxDepth_ = nullptr;
};

}  // namespace uniq::stream
