#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/channel_extractor.h"
#include "core/pipeline.h"
#include "core/sensor_fusion.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sim/measurement_session.h"
#include "stream/bounded_queue.h"

namespace uniq::stream {

/// Everything about a calibration capture except the stops: the per-session
/// metadata a real device sends once, before the sweep starts streaming.
struct CaptureHeader {
  double sampleRate = 0.0;
  std::vector<double> sourceSignal;                    ///< the chirp played
  std::vector<dsp::Complex> hardwareResponseEstimate;  ///< Section 4.6

  /// Header taken from an existing (batch) capture — what a replay does.
  static CaptureHeader fromCapture(const sim::CalibrationCapture& capture) {
    return CaptureHeader{capture.sampleRate, capture.sourceSignal,
                         capture.hardwareResponseEstimate};
  }
};

/// Live view of how well the sweep covers the azimuth hemicircle, emitted by
/// the coverage node after every processed stop. This is the "keep sweeping —
/// rear arc is thin" feedback a capture app shows during acquisition.
struct CoverageSnapshot {
  std::size_t stopsIngested = 0;   ///< stops pushed into the session
  std::size_t stopsExtracted = 0;  ///< stops through the extraction node
  std::size_t stopsUsable = 0;     ///< extracted stops that passed the gate
  /// Fraction of azimuth arc bins over [0, 180] deg holding at least one
  /// usable stop. Monotone non-decreasing over a session: bins are latched
  /// when first covered, so later re-localization never un-covers one.
  double coveredFraction = 0.0;
  /// Widest contiguous uncovered arc (deg) and its bounds.
  double worstGapDeg = 0.0;
  double worstGapLoDeg = 0.0;
  double worstGapHiDeg = 0.0;
  /// Human-readable guidance ("rear arc thin — keep sweeping", "coverage
  /// looks good — hold until the table converges", ...).
  std::string hint;
  /// Latest incremental head estimate and its Eq. 2 objective (population
  /// average / 0 until the first incremental solve has run).
  head::HeadParameters headEstimate;
  double objectiveDeg2 = 0.0;
  std::size_t incrementalSolves = 0;
  /// True once the running table has stabilized (see
  /// StreamingSessionOptions convergence knobs).
  bool converged = false;
};

struct StreamingSessionOptions {
  /// Stage configuration shared with the batch pipeline. Streaming finalize
  /// runs the identical stage code on the identical inputs, which is what
  /// makes the final table bitwise-equal to CalibrationPipeline::run (see
  /// docs/STREAMING.md, "Equality contract").
  core::CalibrationPipelineOptions pipeline{};
  /// Capacity of each inter-node queue. Small on purpose: the queues carry
  /// backpressure, not buffering — a phone streams stops every few hundred
  /// milliseconds while extraction takes ~1 ms.
  std::size_t queueCapacity = 8;
  /// Run an incremental warm-started solve every this many new usable
  /// stops (1 = after every usable stop).
  std::size_t solveEvery = 1;
  /// Convergence: require at least this many usable stops ...
  std::size_t minStopsBeforeConverge = 8;
  /// ... at least this fraction of azimuth bins covered ...
  double minCoverageForConverge = 0.55;
  /// ... and `convergeStreak` consecutive incremental solves whose head
  /// estimate moved less than `convergeDeltaM` meters (max over axes).
  double convergeDeltaM = 5.0e-4;
  std::size_t convergeStreak = 3;
  /// Azimuth arc bin width (deg) for the coverage estimate.
  double coverageBinDeg = 15.0;
  /// Worker threads for the node loops (extract, fuse+coverage). The
  /// session owns its own small common::ThreadPool so node loops can block
  /// on their queues without tying up the caller's (or a service's) pool.
  std::size_t workerThreads = 2;
};

/// What finalize() returns: the batch-identical calibration result plus the
/// streaming session's own accounting.
struct StreamingResult {
  core::PersonalHrtf personal;
  /// True when the convergence signal fired before finalize() was called —
  /// the sweep ended early because the table had stabilized.
  bool convergedEarly = false;
  std::size_t stopsIngested = 0;
  std::size_t stopsUsable = 0;
  std::size_t incrementalSolves = 0;
  /// First push -> convergence signal (0 when the session never converged).
  double timeToConvergeMs = 0.0;
};

/// Streaming calibration session: the batch pipeline's stages decomposed
/// into dataflow nodes — extract -> fuse -> coverage — connected by bounded
/// queues and fed one stop at a time, the way a real device streams audio +
/// IMU while the user sweeps (docs/STREAMING.md has the full graph and
/// contracts).
///
///   push(stop) -> [ingest q] -> extract node -> [fused q] -> fuse node
///                                                              |
///                                     coverage()/converged() <-+
///
/// The extract node runs the per-stop channel deconvolution as stops
/// arrive; the fuse node maintains a *running* DSF solve, warm-started from
/// the previous head estimate (one Nelder-Mead restart seeded at the last
/// E; the persistent SensorFusion's geometry LRU and the localizer's warm
/// Brent brackets carry over between solves, so refinements cost a fraction
/// of a cold solve); the coverage node folds every update into a live
/// CoverageSnapshot and raises the convergence signal once the estimate
/// stabilizes — the moment the capture app can tell the user to stop
/// sweeping.
///
/// finalize() then runs the remaining batch stages (quality gate, robust
/// fusion, near-field, near-far, gesture) over exactly the ingested stops
/// and their already-extracted channels, via
/// CalibrationPipeline::runFromChannels — so a session that saw every stop
/// of a capture produces a bitwise-identical table to the batch run.
///
/// Thread-safety: push/coverage/converged/cancel are safe from any thread;
/// finalize must be called once, after the producer is done pushing.
class StreamingSession {
 public:
  using Options = StreamingSessionOptions;

  explicit StreamingSession(CaptureHeader header, Options opts = {});
  /// Closes the graph and joins the node loops (discarding any un-finalized
  /// work).
  ~StreamingSession();

  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  /// Ingest one stop. Blocks when the ingest queue is full (backpressure).
  /// `seq` is the stop's position in the sweep; stops may arrive in any
  /// order (late IMU packets, retransmits) and are re-ordered by `seq` at
  /// finalize, so arrival order never changes the result. Omitted, it
  /// defaults to the arrival index. Returns false once the session is
  /// finalized or cancelled (the stop is dropped).
  bool push(sim::CalibrationStop stop,
            std::optional<std::size_t> seq = std::nullopt);

  /// Latest coverage/quality snapshot (cheap copy under a mutex).
  CoverageSnapshot coverage() const;

  /// True once the running table has stabilized; the producer should stop
  /// sweeping and call finalize().
  bool converged() const;

  /// Abort: finalize() will return the population-average fallback with
  /// aborted = true, mirroring a batch run whose RunAbortToken fired.
  void cancel();

  /// Drain the graph and run the remaining batch stages over everything
  /// ingested. Fills `report` (when non-null) like the batch pipeline,
  /// with the "extract" stage carrying the summed per-stop extraction time.
  /// Must be called at most once; the session refuses pushes afterwards.
  StreamingResult finalize(obs::RunReport* report = nullptr);

  /// The session's trace context: inherited from the constructing thread
  /// (e.g. a CalibrationService job) when one is active, freshly allocated
  /// otherwise. Spans from both node loops carry it.
  obs::TraceId traceId() const { return traceId_; }

 private:
  struct IngestedStop {
    std::size_t seq = 0;
    sim::CalibrationStop stop;
  };
  struct ExtractedStop {
    std::size_t seq = 0;
    double imuAngleDeg = 0.0;
    core::BinauralChannel channel;
  };

  void extractLoop();
  void fuseLoop();
  /// Fold one extracted stop into the running state and run the warm
  /// incremental solve when one is due. Called from fuseLoop only.
  void absorbStop(ExtractedStop&& stop);
  /// Recompute the latched-bin coverage snapshot. Caller holds mutex_.
  void updateCoverage(double angleDeg, bool usable);
  /// Node-loop completion latch: each loop signals nodeDone() on exit;
  /// finalize/destruction block in joinNodes() until both have.
  void nodeDone();
  void joinNodes();

  CaptureHeader header_;
  Options opts_;
  obs::TraceId traceId_ = 0;
  core::ChannelExtractor extractor_;
  core::SensorFusion fusion_;  ///< persistent: geometry LRU warms up across
                               ///< incremental solves
  core::CalibrationPipeline pipeline_;

  BoundedQueue<IngestedStop> ingestQueue_;
  BoundedQueue<ExtractedStop> fusedQueue_;
  common::ThreadPool nodes_;

  mutable std::mutex mutex_;
  // Accumulated per-seq state, consumed by finalize().
  std::map<std::size_t, sim::CalibrationStop> stopsBySeq_;
  std::map<std::size_t, core::BinauralChannel> channelsBySeq_;
  std::vector<core::FusionMeasurement> measurements_;  ///< usable, seq-sorted
  std::vector<bool> coveredBins_;
  CoverageSnapshot snapshot_;
  std::optional<head::HeadParameters> lastEstimate_;
  std::size_t usableSinceSolve_ = 0;
  std::size_t stableStreak_ = 0;
  double extractWallMs_ = 0.0;
  double firstPushMs_ = 0.0;
  double timeToConvergeMs_ = 0.0;
  std::size_t nextArrivalSeq_ = 0;
  bool cancelled_ = false;
  bool finalized_ = false;

  std::mutex nodesMutex_;
  std::condition_variable nodesCv_;
  int liveNodes_ = 0;
};

}  // namespace uniq::stream
