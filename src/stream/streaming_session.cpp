#include "stream/streaming_session.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace uniq::stream {

namespace {

double nowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Human name for the arc containing `angleDeg` (the sweep conventions:
/// 0 = nose, 90 = left ear, 180 = back of head).
const char* arcName(double angleDeg) {
  if (angleDeg < 60.0) return "front";
  if (angleDeg < 120.0) return "side";
  return "rear";
}

}  // namespace

StreamingSession::StreamingSession(CaptureHeader header, Options opts)
    : header_(std::move(header)),
      opts_(opts),
      // Inherit the constructing thread's context (a service job) when one
      // is active; a directly-constructed session gets its own.
      traceId_(obs::currentTraceId() != 0 ? obs::currentTraceId()
                                          : obs::newTraceId()),
      extractor_(header_.hardwareResponseEstimate, header_.sampleRate,
                 opts_.pipeline.extractor),
      fusion_([&] {
        // Incremental solves reuse the batch fusion configuration so the
        // live estimate tracks what the final solve will see.
        core::SensorFusionOptions f = opts_.pipeline.fusion;
        if (f.numThreads == 0) f.numThreads = opts_.pipeline.numThreads;
        return f;
      }()),
      pipeline_(opts_.pipeline),
      ingestQueue_(opts_.queueCapacity, "ingest"),
      fusedQueue_(opts_.queueCapacity, "fused"),
      // Each node loop parks a worker on its queue; with fewer than one
      // worker per node the graph would deadlock under backpressure.
      nodes_(std::max<std::size_t>(2, opts_.workerThreads)) {
  const double binDeg =
      opts_.coverageBinDeg > 0.0 ? opts_.coverageBinDeg : 15.0;
  coveredBins_.assign(
      static_cast<std::size_t>(std::ceil(180.0 / binDeg)), false);
  snapshot_.headEstimate = head::HeadParameters::average();
  snapshot_.worstGapDeg = 180.0;
  snapshot_.worstGapHiDeg = 180.0;
  snapshot_.hint = "sweep just started — cover the full arc";
  liveNodes_ = 2;
  // Explicit scopes (rather than relying on pool propagation alone) so the
  // node loops carry the session's context even when it was freshly
  // allocated above, after the constructing thread's context was captured.
  nodes_.submit([this] {
    obs::TraceContextScope scope(traceId_);
    extractLoop();
  });
  nodes_.submit([this] {
    obs::TraceContextScope scope(traceId_);
    fuseLoop();
  });
}

StreamingSession::~StreamingSession() {
  ingestQueue_.close();
  joinNodes();
}

bool StreamingSession::push(sim::CalibrationStop stop,
                            std::optional<std::size_t> seq) {
  std::size_t s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finalized_ || cancelled_) return false;
    s = seq ? *seq : nextArrivalSeq_;
    nextArrivalSeq_ = std::max(nextArrivalSeq_, s + 1);
    if (firstPushMs_ == 0.0) firstPushMs_ = nowMs();
    ++snapshot_.stopsIngested;
  }
  static obs::Counter& ingested =
      obs::registry().counter("stream.stops.ingested");
  ingested.inc();
  return ingestQueue_.push(IngestedStop{s, std::move(stop)});
}

CoverageSnapshot StreamingSession::coverage() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_;
}

bool StreamingSession::converged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_.converged;
}

void StreamingSession::cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
  }
  // Wake any producer blocked on backpressure and let the nodes drain.
  ingestQueue_.close();
}

void StreamingSession::extractLoop() {
  IngestedStop in;
  while (ingestQueue_.pop(in)) {
    UNIQ_SPAN("stream.extract.stop");
    const double t0 = nowMs();
    auto channel =
        extractor_.extract(in.stop.recording.left, in.stop.recording.right,
                           header_.sourceSignal);
    const double elapsedMs = nowMs() - t0;
    ExtractedStop out;
    out.seq = in.seq;
    out.imuAngleDeg = in.stop.imuAngleDeg;
    out.channel = std::move(channel);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      extractWallMs_ += elapsedMs;
      stopsBySeq_.insert_or_assign(in.seq, std::move(in.stop));
    }
    fusedQueue_.push(std::move(out));
  }
  // Ingest is closed and drained: end the downstream edge too.
  fusedQueue_.close();
  nodeDone();
}

void StreamingSession::fuseLoop() {
  ExtractedStop ex;
  while (fusedQueue_.pop(ex)) absorbStop(std::move(ex));
  nodeDone();
}

void StreamingSession::absorbStop(ExtractedStop&& stop) {
  // Fold the stop into the running state under the lock...
  std::vector<core::FusionMeasurement> measurements;
  std::optional<head::HeadParameters> seed;
  bool solveNow = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto& q = stop.channel.quality;
    const bool usable = stop.channel.firstTapLeftSec &&
                        stop.channel.firstTapRightSec && !q.gated();
    ++snapshot_.stopsExtracted;
    if (usable) {
      core::FusionMeasurement m;
      m.imuAngleDeg = stop.imuAngleDeg;
      m.delayLeftSec = *stop.channel.firstTapLeftSec;
      m.delayRightSec = *stop.channel.firstTapRightSec;
      m.sourceIndex = stop.seq;
      // Keep measurements seq-sorted so the incremental solve is a
      // deterministic function of the *set* of stops, not arrival order.
      measurements_.insert(
          std::upper_bound(measurements_.begin(), measurements_.end(), m,
                           [](const core::FusionMeasurement& a,
                              const core::FusionMeasurement& b) {
                             return a.sourceIndex < b.sourceIndex;
                           }),
          m);
      ++snapshot_.stopsUsable;
      ++usableSinceSolve_;
    }
    updateCoverage(stop.imuAngleDeg, usable);
    channelsBySeq_.insert_or_assign(stop.seq, std::move(stop.channel));

    solveNow =
        usableSinceSolve_ >= std::max<std::size_t>(1, opts_.solveEvery) &&
        measurements_.size() >= 3 && !cancelled_;
    if (solveNow) {
      usableSinceSolve_ = 0;
      measurements = measurements_;
      seed = lastEstimate_;
    }
  }
  if (!solveNow) return;

  // ...then run the warm-started solve outside it, so coverage()/push()
  // callers never wait on an optimizer iteration.
  UNIQ_SPAN("stream.fuse.solve");
  static obs::Counter& incRestarts =
      obs::registry().counter("stream.solve.incremental_restarts");
  static obs::Gauge& deltaGauge =
      obs::registry().gauge("stream.solve.last_delta_m");
  incRestarts.inc();
  const auto result = fusion_.solveIncremental(measurements, seed);

  std::lock_guard<std::mutex> lock(mutex_);
  const auto& e = result.headParams;
  const double delta =
      lastEstimate_
          ? std::max({std::fabs(e.a - lastEstimate_->a),
                      std::fabs(e.b - lastEstimate_->b),
                      std::fabs(e.c - lastEstimate_->c)})
          : 1.0;  // first solve never counts toward the stable streak
  deltaGauge.set(delta);
  lastEstimate_ = e;
  snapshot_.headEstimate = e;
  snapshot_.objectiveDeg2 = result.finalObjectiveDeg2;
  ++snapshot_.incrementalSolves;
  stableStreak_ = delta < opts_.convergeDeltaM ? stableStreak_ + 1 : 0;
  if (!snapshot_.converged &&
      measurements.size() >= opts_.minStopsBeforeConverge &&
      snapshot_.coveredFraction >= opts_.minCoverageForConverge &&
      stableStreak_ >= opts_.convergeStreak) {
    snapshot_.converged = true;
    timeToConvergeMs_ = nowMs() - firstPushMs_;
    snapshot_.hint = "table converged — you can stop sweeping";
    obs::registry().gauge("stream.time_to_converge_ms").set(timeToConvergeMs_);
    obs::registry().counter("stream.sessions.converged").inc();
  }
}

void StreamingSession::updateCoverage(double angleDeg, bool usable) {
  UNIQ_SPAN("stream.coverage.update");
  const double binDeg =
      180.0 / static_cast<double>(coveredBins_.size());
  if (usable) {
    const double clamped = std::clamp(angleDeg, 0.0, 180.0);
    auto bin = static_cast<std::size_t>(clamped / binDeg);
    if (bin >= coveredBins_.size()) bin = coveredBins_.size() - 1;
    // Latched: a bin once covered stays covered, which is what makes the
    // covered fraction monotone over a session.
    coveredBins_[bin] = true;
  }

  std::size_t covered = 0;
  std::size_t worstRun = 0, worstStart = 0, run = 0, runStart = 0;
  for (std::size_t i = 0; i < coveredBins_.size(); ++i) {
    if (coveredBins_[i]) {
      ++covered;
      run = 0;
    } else {
      if (run == 0) runStart = i;
      ++run;
      if (run > worstRun) {
        worstRun = run;
        worstStart = runStart;
      }
    }
  }
  snapshot_.coveredFraction =
      static_cast<double>(covered) / static_cast<double>(coveredBins_.size());
  snapshot_.worstGapDeg = static_cast<double>(worstRun) * binDeg;
  snapshot_.worstGapLoDeg = static_cast<double>(worstStart) * binDeg;
  snapshot_.worstGapHiDeg =
      static_cast<double>(worstStart + worstRun) * binDeg;

  if (snapshot_.converged) return;  // the converged hint wins
  if (worstRun == 0) {
    snapshot_.hint = "full arc covered — hold until the table converges";
  } else if (snapshot_.worstGapDeg > 2.0 * binDeg) {
    std::ostringstream os;
    const double mid =
        0.5 * (snapshot_.worstGapLoDeg + snapshot_.worstGapHiDeg);
    os << arcName(mid) << " arc thin — keep sweeping ("
       << static_cast<int>(std::lround(snapshot_.worstGapLoDeg)) << ".."
       << static_cast<int>(std::lround(snapshot_.worstGapHiDeg))
       << " deg uncovered)";
    snapshot_.hint = os.str();
  } else {
    snapshot_.hint = "coverage looks good — keep sweeping until converged";
  }
}

void StreamingSession::nodeDone() {
  std::lock_guard<std::mutex> lock(nodesMutex_);
  --liveNodes_;
  nodesCv_.notify_all();
}

void StreamingSession::joinNodes() {
  std::unique_lock<std::mutex> lock(nodesMutex_);
  nodesCv_.wait(lock, [this] { return liveNodes_ == 0; });
}

StreamingResult StreamingSession::finalize(obs::RunReport* report) {
  UNIQ_SPAN("stream.finalize");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    finalized_ = true;
  }
  // End of stream: drain the graph so every pushed stop has been extracted
  // and folded in before the batch stages run.
  ingestQueue_.close();
  joinNodes();

  sim::CalibrationCapture capture;
  capture.sampleRate = header_.sampleRate;
  capture.sourceSignal = header_.sourceSignal;
  capture.hardwareResponseEstimate = header_.hardwareResponseEstimate;
  std::vector<core::BinauralChannel> channels;
  bool wasCancelled = false;
  bool convergedEarly = false;
  std::size_t stopsIngested = 0, stopsUsable = 0, incrementalSolves = 0;
  double timeToConvergeMs = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    convergedEarly = snapshot_.converged;
    stopsIngested = snapshot_.stopsIngested;
    stopsUsable = snapshot_.stopsUsable;
    incrementalSolves = snapshot_.incrementalSolves;
    timeToConvergeMs = timeToConvergeMs_;
    wasCancelled = cancelled_;
    // Re-order by sequence number (std::map iterates in key order), so the
    // assembled capture is independent of arrival order.
    capture.stops.reserve(stopsBySeq_.size());
    channels.reserve(channelsBySeq_.size());
    for (auto& [seq, stop] : stopsBySeq_) {
      capture.stops.push_back(std::move(stop));
      auto it = channelsBySeq_.find(seq);
      channels.push_back(it != channelsBySeq_.end()
                             ? std::move(it->second)
                             : core::BinauralChannel{});
    }
    stopsBySeq_.clear();
    channelsBySeq_.clear();
  }

  static obs::Counter& finalizedCounter =
      obs::registry().counter("stream.sessions.finalized");
  finalizedCounter.inc();

  const auto wrap = [&](core::PersonalHrtf personal) {
    return StreamingResult{std::move(personal), convergedEarly, stopsIngested,
                           stopsUsable,         incrementalSolves,
                           timeToConvergeMs};
  };

  if (wasCancelled || capture.stops.empty()) {
    std::vector<obs::Diagnostic> diagnostics;
    diagnostics.push_back(obs::Diagnostic{
        "stream", obs::Severity::kError,
        wasCancelled ? "streaming session cancelled before finalize"
                     : "streaming session received no stops",
        {}});
    auto personal = pipeline_.populationFallback(
        capture, std::move(diagnostics), report);
    personal.aborted = wasCancelled;
    return wrap(std::move(personal));
  }

  if (report) report->stage("extract").wallMs = extractWallMs_;
  return wrap(pipeline_.runFromChannels(capture, channels, report));
}

}  // namespace uniq::stream
