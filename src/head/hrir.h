#pragma once

#include <cstddef>
#include <vector>

namespace uniq::head {

/// Binaural head related impulse response: one time-domain channel per ear,
/// at a common sample rate and a common time origin. The frequency-domain
/// view (HRTF) is obtained by FFT; UNIQ works mostly with the time-domain
/// form, as the paper does for alignment and interpolation (Section 4.2).
struct Hrir {
  std::vector<double> left;
  std::vector<double> right;
  double sampleRate = 0.0;

  std::size_t length() const { return left.size(); }
  bool empty() const { return left.empty() && right.empty(); }
};

/// Scale both channels so the largest absolute sample across the two is 1.
/// No-op for silent responses. Relative interaural level differences are
/// preserved.
void normalizePeak(Hrir& hrir);

/// Energy (sum of squares) of one channel.
double channelEnergy(const std::vector<double>& channel);

/// Mix a mono signal through the HRIR, producing the binaural pair the
/// earphone would play (paper Section 4.4: Y = H * S per ear).
struct BinauralSignal {
  std::vector<double> left;
  std::vector<double> right;
};
BinauralSignal renderBinaural(const Hrir& hrir,
                              const std::vector<double>& mono);

}  // namespace uniq::head
