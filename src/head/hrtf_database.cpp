#include "head/hrtf_database.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "dsp/convolution.h"
#include "dsp/fractional_delay.h"
#include "dsp/signal_generators.h"
#include "geometry/polar.h"

namespace uniq::head {

HrtfDatabase::HrtfDatabase(Subject subject, Options opts)
    : subject_(std::move(subject)),
      opts_(opts),
      boundary_(std::make_unique<geo::HeadBoundary>(
          subject_.headParams.a, subject_.headParams.b, subject_.headParams.c,
          subject_.shapeHarmonics, opts.boundaryResolution)),
      pinnaLeft_(subject_.pinnaSeed, geo::Ear::kLeft),
      pinnaRight_(subject_.pinnaSeed, geo::Ear::kRight) {
  UNIQ_REQUIRE(opts_.sampleRate > 8000, "sample rate too low");
  UNIQ_REQUIRE(opts_.irLength >= 96, "IR length too short");
  // Subject-specific face reflection pattern (independent per ear).
  Pcg32 rng = Pcg32(subject_.pinnaSeed).fork(0xFACE);
  for (int e = 0; e < 2; ++e) {
    auto* refl = e == 0 ? reflectionsLeft_ : reflectionsRight_;
    for (int j = 0; j < kFaceReflections; ++j) {
      refl[j].delayOffsetUs = rng.uniform(130.0, 450.0) + 180.0 * j;
      refl[j].gain = rng.uniform(0.30, 0.60) * std::pow(0.8, j);
      refl[j].anglePhase = rng.uniform(0.0, kTwoPi);
    }
  }
}

std::vector<double> HrtfDatabase::composeEar(const geo::DiffractionPath& path,
                                             geo::Ear ear, double tapDelaySec,
                                             double mainAmplitude) const {
  const double fs = opts_.sampleRate;
  std::vector<double> taps(opts_.irLength, 0.0);
  // The pinna IR leads with its direct tap a few samples in; shift the tap
  // train back so the composed channel's first arrival lands exactly at
  // tapDelaySec.
  const double mainPos =
      tapDelaySec * fs - PinnaModel::kDirectTapLeadSamples;
  UNIQ_CHECK(mainPos >= 0.0 &&
                 mainPos < static_cast<double>(opts_.irLength) - 40.0,
             "tap position outside the IR window; increase irLength");
  dsp::addFractionalTap(taps, mainPos, mainAmplitude, 8);

  const double incidence =
      PinnaModel::incidenceAngleDeg(*boundary_, ear, path.arrivalDirection);
  const auto* refl =
      ear == geo::Ear::kLeft ? reflectionsLeft_ : reflectionsRight_;
  for (int j = 0; j < kFaceReflections; ++j) {
    // Face reflections shift slightly with the arrival direction.
    const double delayUs =
        refl[j].delayOffsetUs *
        (1.0 + 0.15 * std::sin(degToRad(incidence) + refl[j].anglePhase));
    const double pos = mainPos + delayUs * 1e-6 * fs;
    if (pos < static_cast<double>(opts_.irLength) - 40.0) {
      dsp::addFractionalTap(taps, pos, mainAmplitude * refl[j].gain, 8);
    }
  }

  const PinnaModel& pinna =
      ear == geo::Ear::kLeft ? pinnaLeft_ : pinnaRight_;
  const auto pinnaIr = pinna.impulseResponse(incidence, fs);
  auto channel = dsp::convolve(taps, pinnaIr);
  channel.resize(opts_.irLength);
  return channel;
}

Hrir HrtfDatabase::nearFieldAt(geo::Vec2 source) const {
  UNIQ_REQUIRE(!boundary_->isInside(source), "source inside the head");
  Hrir hrir;
  hrir.sampleRate = opts_.sampleRate;
  for (geo::Ear ear : {geo::Ear::kLeft, geo::Ear::kRight}) {
    const auto path = geo::nearFieldPath(*boundary_, source, ear);
    const double delaySec = path.length / kSpeedOfSound;
    const double amplitude =
        (opts_.referenceDistance / std::max(path.length, 0.05)) *
        std::exp(-opts_.arcAttenuationNepersPerMeter * path.arcLength);
    auto channel = composeEar(path, ear, delaySec, amplitude);
    (ear == geo::Ear::kLeft ? hrir.left : hrir.right) = std::move(channel);
  }
  return hrir;
}

Hrir HrtfDatabase::nearField(double thetaDeg, double radius) const {
  UNIQ_REQUIRE(radius > 0.1 && radius < 1.5,
               "near-field radius out of range (0.1, 1.5) m");
  return nearFieldAt(geo::pointFromPolarDeg(thetaDeg, radius));
}

Hrir HrtfDatabase::farField(double thetaDeg) const {
  // Plane wave propagating toward the head: the source sits at thetaDeg, so
  // the propagation direction is the negated source direction.
  const geo::Vec2 d = -geo::directionFromAzimuthDeg(thetaDeg);
  Hrir hrir;
  hrir.sampleRate = opts_.sampleRate;
  for (geo::Ear ear : {geo::Ear::kLeft, geo::Ear::kRight}) {
    const auto path = geo::farFieldPath(*boundary_, d, ear);
    const double delaySec =
        path.length / kSpeedOfSound + opts_.farFieldLeadSec;
    const double amplitude =
        std::exp(-opts_.arcAttenuationNepersPerMeter * path.arcLength);
    auto channel = composeEar(path, ear, delaySec, amplitude);
    (ear == geo::Ear::kLeft ? hrir.left : hrir.right) = std::move(channel);
  }
  return hrir;
}

Hrir withMeasurementNoise(const Hrir& hrir, double snrDb, Pcg32& rng) {
  Hrir out = hrir;
  dsp::addNoiseSnrDb(out.left, snrDb, rng);
  dsp::addNoiseSnrDb(out.right, snrDb, rng);
  return out;
}

}  // namespace uniq::head
