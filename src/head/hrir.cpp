#include "head/hrir.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dsp/convolution.h"

namespace uniq::head {

void normalizePeak(Hrir& hrir) {
  double peak = 0.0;
  for (double v : hrir.left) peak = std::max(peak, std::fabs(v));
  for (double v : hrir.right) peak = std::max(peak, std::fabs(v));
  if (peak < 1e-30) return;
  const double g = 1.0 / peak;
  for (auto& v : hrir.left) v *= g;
  for (auto& v : hrir.right) v *= g;
}

double channelEnergy(const std::vector<double>& channel) {
  double e = 0.0;
  for (double v : channel) e += v * v;
  return e;
}

BinauralSignal renderBinaural(const Hrir& hrir,
                              const std::vector<double>& mono) {
  UNIQ_REQUIRE(!hrir.empty(), "empty HRIR");
  UNIQ_REQUIRE(!mono.empty(), "empty source signal");
  BinauralSignal out;
  out.left = dsp::convolve(mono, hrir.left);
  out.right = dsp::convolve(mono, hrir.right);
  return out;
}

}  // namespace uniq::head
