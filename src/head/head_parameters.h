#pragma once

#include <cstddef>

#include "common/random.h"

namespace uniq::head {

/// The paper's 3-parameter head geometry E = (a, b, c): the head outline is
/// two half-ellipses joined at the ears (Section 4.1, Figure 8).
///   a — half ear-to-ear width (both halves share it), meters
///   b — nose-side depth (front half-ellipse), meters
///   c — back-of-head depth (back half-ellipse), meters
struct HeadParameters {
  double a = 0.075;
  double b = 0.1025;
  double c = 0.0925;

  /// Anthropometrically plausible bounds for optimization.
  static constexpr double kMinA = 0.060, kMaxA = 0.090;
  static constexpr double kMinB = 0.085, kMaxB = 0.120;
  static constexpr double kMinC = 0.075, kMaxC = 0.110;

  bool isPlausible() const {
    return a >= kMinA && a <= kMaxA && b >= kMinB && b <= kMaxB &&
           c >= kMinC && c <= kMaxC;
  }

  /// Population-average head used for the "global template" HRTF.
  static HeadParameters average() { return {0.075, 0.1025, 0.0925}; }

  /// Draw a plausible random head. Front depth (nose side) exceeds back
  /// depth for essentially all humans, so `c` is sampled below `b`.
  static HeadParameters sample(Pcg32& rng) {
    HeadParameters h;
    h.a = rng.uniform(kMinA + 0.003, kMaxA - 0.003);
    h.b = rng.uniform(0.095, kMaxB - 0.003);
    const double gap = rng.uniform(0.006, 0.022);
    h.c = h.b - gap;
    if (h.c > kMaxC - 0.003) h.c = kMaxC - 0.003;
    if (h.c < kMinC + 0.003) h.c = kMinC + 0.003;
    return h;
  }
};

/// Max absolute per-axis difference, a convenience metric for tests and
/// experiment reports.
inline double maxAxisError(const HeadParameters& x, const HeadParameters& y) {
  double e = 0.0;
  const double da = x.a > y.a ? x.a - y.a : y.a - x.a;
  const double db = x.b > y.b ? x.b - y.b : y.b - x.b;
  const double dc = x.c > y.c ? x.c - y.c : y.c - x.c;
  e = da > db ? da : db;
  return e > dc ? e : dc;
}

}  // namespace uniq::head
