#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "geometry/head_boundary.h"
#include "head/head_parameters.h"

namespace uniq::head {

/// A synthetic "volunteer": everything that is anatomically unique about a
/// user. Replaces the paper's 5 human volunteers (see DESIGN.md,
/// substitutions table).
struct Subject {
  std::string name;
  HeadParameters headParams;
  /// Seeds the pinna micro-echo curves (and the face-reflection pattern).
  std::uint64_t pinnaSeed = 1;
  /// True head-shape deviation from the ideal two-half-ellipse family; the
  /// estimator never sees these (genuine model mismatch).
  std::vector<geo::BoundaryHarmonic> shapeHarmonics;
};

/// Plausible random shape deviation (a few low-order harmonics, up to ~2%
/// radial amplitude).
inline std::vector<geo::BoundaryHarmonic> sampleShapeHarmonics(Pcg32& rng) {
  std::vector<geo::BoundaryHarmonic> harmonics;
  for (int order : {2, 3, 4}) {
    geo::BoundaryHarmonic h;
    h.order = order;
    h.amplitude = rng.uniform(0.008, 0.030);
    h.phaseRad = rng.uniform(0.0, 6.28318530718);
    harmonics.push_back(h);
  }
  return harmonics;
}

/// Deterministically generate a population of distinct subjects.
inline std::vector<Subject> makePopulation(std::size_t count,
                                           std::uint64_t seed) {
  std::vector<Subject> subjects;
  subjects.reserve(count);
  Pcg32 rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Subject s;
    s.name = "volunteer-" + std::to_string(i + 1);
    s.headParams = HeadParameters::sample(rng);
    s.pinnaSeed = (seed * 1000003ULL) ^ (i * 7919ULL + 17ULL);
    s.shapeHarmonics = sampleShapeHarmonics(rng);
    subjects.push_back(std::move(s));
  }
  return subjects;
}

/// The subject whose HRTF plays the role of the paper's "global template"
/// (the average HRTF shipped in products).
inline Subject globalTemplateSubject() {
  Subject s;
  s.name = "global-template";
  s.headParams = HeadParameters::average();
  s.pinnaSeed = 0xABCDEF12345ULL;
  return s;
}

}  // namespace uniq::head
