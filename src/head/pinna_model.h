#pragma once

#include <cstdint>
#include <vector>

#include "geometry/diffraction.h"

namespace uniq::head {

/// Synthetic per-user pinna filter.
///
/// The pinna scatters an arriving wave into a handful of micro-echoes whose
/// delays and strengths depend on the arrival direction (paper Section 2,
/// Figure 2: the pinna response is near 1:1 with the angle of arrival for a
/// given user, and differs markedly between users). This model reproduces
/// exactly those two properties: a fixed number of echo taps whose
/// delay/gain curves are smooth functions of the signed incidence angle,
/// with all curve parameters drawn deterministically from a per-user seed.
class PinnaModel {
 public:
  /// `userSeed` individualizes the pinna; each ear gets an independent
  /// parameter draw (human left/right pinnae differ too).
  PinnaModel(std::uint64_t userSeed, geo::Ear ear);

  /// Impulse response for a wave arriving with signed incidence angle
  /// `incidenceDeg` (0 = straight into the ear along the outward normal;
  /// +/-90 = grazing along the head surface from the front/back side).
  /// The response starts with the unit direct tap at sample 0 followed by
  /// the angle-dependent micro-echoes.
  std::vector<double> impulseResponse(double incidenceDeg, double sampleRate,
                                      std::size_t length = 64) const;

  /// Signed incidence angle (degrees) for an arrival propagation direction
  /// at the given ear of the given head. Positive angles = arrival biased
  /// toward the front of the head.
  static double incidenceAngleDeg(const geo::HeadBoundary& head, geo::Ear ear,
                                  geo::Vec2 arrivalDirection);

  static constexpr int kEchoCount = 7;

  /// The direct tap inside impulseResponse() sits at this sample offset
  /// (so the interpolation kernel has room on both sides). Consumers that
  /// compose absolute-delay channels must subtract this lead.
  static constexpr double kDirectTapLeadSamples = 4.0;

 private:
  struct Echo {
    double baseDelayUs;    ///< mean delay of this echo, microseconds
    double delaySwingUs;   ///< amplitude of the angular delay modulation
    double delayFreq;      ///< angular frequency of the modulation
    double delayPhase;
    double baseGain;
    double gainFreq;
    double gainPhase;
  };
  Echo echoes_[kEchoCount];

  // Per-user spectral coloration: a concha/canal resonance and an
  // angle-dependent pinna notch — the classic individual features of real
  // HRTFs. Both frequencies are drawn per user; the notch center migrates
  // with the incidence angle as it does anatomically.
  double resonanceHz_ = 4000.0;
  double resonanceGain_ = 1.2;
  double resonanceQ_ = 2.0;
  struct Notch {
    double baseHz = 7000.0;
    double swingHz = 2000.0;
    double phase = 0.0;
    double depth = 0.8;
    double q = 3.0;
  };
  Notch notches_[2];
};

}  // namespace uniq::head
