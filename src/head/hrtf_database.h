#pragma once

#include <memory>

#include "geometry/diffraction.h"
#include "geometry/head_boundary.h"
#include "head/hrir.h"
#include "head/pinna_model.h"
#include "head/subject.h"

namespace uniq::head {

/// Analytic ground-truth HRTF generator — the library's stand-in for the
/// paper's anechoic-chamber measurement rig (Section 1: speaker sweeps
/// around the seated user, ceiling-camera ground truth).
///
/// For a given subject it composes, per ear:
///   1. the diffraction first tap (delay = shortest path around the head,
///      amplitude = spreading loss x creeping-wave attenuation),
///   2. a couple of subject-specific face-reflection taps (the later peaks
///      visible in the paper's Figure 9),
///   3. the subject's angle-dependent pinna micro-echo filter.
/// Near-field responses use exact point-source geometry; far-field responses
/// use plane-wave (parallel ray) geometry — the distinction at the heart of
/// the paper's near-far conversion problem (Section 3.2, Figure 7).
struct HrtfDatabaseOptions {
  double sampleRate = 48000.0;
  std::size_t irLength = 256;
  /// Far-field responses place the wavefront-through-head-center instant
  /// at this offset from the IR start, so negative relative delays fit.
  double farFieldLeadSec = 1.0e-3;
  /// Creeping-wave (diffraction) attenuation, nepers per meter of arc.
  double arcAttenuationNepersPerMeter = 8.0;
  /// Reference distance for the 1/r spreading normalization.
  double referenceDistance = 0.30;
  std::size_t boundaryResolution = 256;
};

class HrtfDatabase {
 public:
  using Options = HrtfDatabaseOptions;

  explicit HrtfDatabase(Subject subject, Options opts = {});

  /// Ground-truth near-field HRIR for a point source at polar angle
  /// `thetaDeg` (paper convention: 0 = nose, 90 = left ear, 180 = back) and
  /// distance `radius` meters from the head center. The IR time origin is
  /// the source emission instant (absolute propagation delays preserved —
  /// the phone and earbuds are synchronized in the paper's prototype).
  Hrir nearField(double thetaDeg, double radius) const;

  /// Ground-truth near-field HRIR for an arbitrary external source point.
  Hrir nearFieldAt(geo::Vec2 source) const;

  /// Ground-truth far-field HRIR for plane waves arriving from `thetaDeg`.
  Hrir farField(double thetaDeg) const;

  const geo::HeadBoundary& boundary() const { return *boundary_; }
  const Subject& subject() const { return subject_; }
  const Options& options() const { return opts_; }

 private:
  struct FaceReflection {
    double delayOffsetUs;
    double gain;
    double anglePhase;
  };
  static constexpr int kFaceReflections = 2;

  std::vector<double> composeEar(const geo::DiffractionPath& path,
                                 geo::Ear ear, double tapDelaySec,
                                 double mainAmplitude) const;

  Subject subject_;
  Options opts_;
  std::unique_ptr<geo::HeadBoundary> boundary_;
  PinnaModel pinnaLeft_;
  PinnaModel pinnaRight_;
  FaceReflection reflectionsLeft_[kFaceReflections];
  FaceReflection reflectionsRight_[kFaceReflections];
};

/// Additive measurement noise on an HRIR at the given SNR (dB relative to
/// the RMS of each channel). Used to model the paper's "two separate
/// measurements of ground truth" upper-bound comparison (Figure 18).
Hrir withMeasurementNoise(const Hrir& hrir, double snrDb, Pcg32& rng);

}  // namespace uniq::head
