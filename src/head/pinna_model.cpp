#include "head/pinna_model.h"

#include <cmath>

#include "common/constants.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/random.h"
#include "dsp/biquad.h"
#include "dsp/fractional_delay.h"

namespace uniq::head {

PinnaModel::PinnaModel(std::uint64_t userSeed, geo::Ear ear) {
  Pcg32 rng = Pcg32(userSeed).fork(ear == geo::Ear::kLeft ? 101 : 202);
  for (int k = 0; k < kEchoCount; ++k) {
    Echo& e = echoes_[k];
    // Echo delays spread over the physical pinna scale (sub-millisecond),
    // later echoes progressively longer and weaker.
    const double lo = 30.0 + 60.0 * k;
    e.baseDelayUs = rng.uniform(lo, lo + 80.0);
    e.delaySwingUs = rng.uniform(30.0, 90.0);
    e.delayFreq = rng.uniform(0.8, 2.2);
    e.delayPhase = rng.uniform(0.0, kTwoPi);
    e.baseGain = rng.uniform(0.9, 1.6) * std::pow(0.9, k);
    e.gainFreq = rng.uniform(0.8, 2.2);
    e.gainPhase = rng.uniform(0.0, kTwoPi);
  }
  resonanceHz_ = rng.uniform(2000.0, 7000.0);
  resonanceGain_ = rng.uniform(1.2, 2.4);
  resonanceQ_ = rng.uniform(1.5, 3.5);
  notches_[0].baseHz = rng.uniform(4500.0, 8000.0);
  notches_[1].baseHz = rng.uniform(8500.0, 13000.0);
  for (auto& nt : notches_) {
    nt.swingHz = rng.uniform(1200.0, 2600.0);
    nt.phase = rng.uniform(0.0, kTwoPi);
    nt.depth = rng.uniform(0.65, 0.95);
    nt.q = rng.uniform(2.5, 5.0);
  }
}

std::vector<double> PinnaModel::impulseResponse(double incidenceDeg,
                                                double sampleRate,
                                                std::size_t length) const {
  UNIQ_REQUIRE(sampleRate > 0, "sampleRate must be positive");
  UNIQ_REQUIRE(length >= 16, "pinna IR length too short");
  std::vector<double> ir(length, 0.0);
  const double phi = degToRad(incidenceDeg);
  // Direct tap.
  dsp::addFractionalTap(ir, 4.0, 1.0, 4);
  for (const Echo& e : echoes_) {
    const double delayUs =
        e.baseDelayUs + e.delaySwingUs * std::cos(e.delayFreq * phi +
                                                  e.delayPhase);
    const double gain =
        e.baseGain *
        (0.45 + 0.55 * (0.5 + 0.5 * std::cos(e.gainFreq * phi + e.gainPhase)));
    const double delaySamples = 4.0 + delayUs * 1e-6 * sampleRate;
    if (delaySamples < static_cast<double>(length) - 4.0) {
      dsp::addFractionalTap(ir, delaySamples, gain, 4);
    }
  }

  // Spectral coloration: concha/canal resonance boost plus two
  // angle-dependent notches (real pinnae carry several, and their center
  // frequencies migrate with the arrival direction).
  dsp::Biquad resonance =
      dsp::Biquad::bandpass(resonanceHz_, resonanceQ_, sampleRate);
  const auto boosted = resonance.process(ir);
  std::vector<double> out = ir;
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] += resonanceGain_ * boosted[i];
  for (const auto& nt : notches_) {
    const double notchHz =
        clamp(nt.baseHz + nt.swingHz * std::cos(phi + nt.phase), 1500.0,
              0.45 * sampleRate);
    dsp::Biquad notch = dsp::Biquad::bandpass(notchHz, nt.q, sampleRate);
    const auto notched = notch.process(out);
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] -= nt.depth * notched[i];
  }
  return out;
}

double PinnaModel::incidenceAngleDeg(const geo::HeadBoundary& head,
                                     geo::Ear ear,
                                     geo::Vec2 arrivalDirection) {
  const std::size_t earIdx = ear == geo::Ear::kLeft ? head.leftEarIndex()
                                                    : head.rightEarIndex();
  const geo::Vec2 n = head.normal(earIdx);
  const geo::Vec2 into = -arrivalDirection.normalized();
  // Signed angle from the outward normal to the reversed propagation
  // direction; sign convention: positive when the source is biased toward
  // the front (+y side) of the head.
  double ang = radToDeg(std::atan2(cross(n, into), dot(n, into)));
  // Make "toward the front" positive for both ears (mirror the left ear,
  // whose outward normal points -x).
  if (ear == geo::Ear::kLeft) ang = -ang;
  return ang;
}

}  // namespace uniq::head
