#pragma once

#include <vector>

#include "head/hrir.h"

namespace uniq::eval {

/// Similarity of two HRIR channels: the peak of the normalized cross-
/// correlation with the lag search bounded to +/- maxLagMs. This is the
/// paper's evaluation metric for comparing estimated and ground-truth HRIRs
/// (Section 5.1, Figure 18: "cross-correlate personalized HRTF vector with
/// ground truth").
double channelSimilarity(const std::vector<double>& a,
                         const std::vector<double>& b, double sampleRate,
                         double maxLagMs = 1.0);

/// Mean of the left and right channel similarities.
double hrirSimilarity(const head::Hrir& a, const head::Hrir& b,
                      double maxLagMs = 1.0);

/// Per-ear similarity pair.
struct EarSimilarity {
  double left = 0.0;
  double right = 0.0;
};
EarSimilarity hrirSimilarityPerEar(const head::Hrir& a, const head::Hrir& b,
                                   double maxLagMs = 1.0);

/// Mean of a vector (0 for empty).
double mean(const std::vector<double>& v);

/// Sample standard deviation (0 for size < 2).
double standardDeviation(const std::vector<double>& v);

/// Median (0 for empty; averages the middle pair for even sizes).
double median(std::vector<double> v);

/// p-th percentile (p in [0, 100], linear interpolation).
double percentile(std::vector<double> v, double p);

}  // namespace uniq::eval
