#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace uniq::eval {

/// CDF of a sample set as (value, cumulative probability) pairs.
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};
std::vector<CdfPoint> computeCdf(std::vector<double> samples);

/// Print a named series as aligned columns (the bench binaries regenerate
/// the paper's figures as printed series rather than plots).
void printSeries(std::ostream& os, const std::string& title,
                 const std::vector<std::string>& columnNames,
                 const std::vector<std::vector<double>>& columns);

/// Print a CDF at a reduced set of probability levels.
void printCdfSummary(std::ostream& os, const std::string& title,
                     const std::vector<double>& samples);

/// Section header for bench output.
void printHeader(std::ostream& os, const std::string& figure,
                 const std::string& description);

}  // namespace uniq::eval
