#include "eval/reporting.h"

#include <algorithm>
#include <iomanip>

#include "common/error.h"
#include "eval/metrics.h"

namespace uniq::eval {

std::vector<CdfPoint> computeCdf(std::vector<double> samples) {
  std::vector<CdfPoint> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  cdf.reserve(samples.size());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    cdf.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

void printSeries(std::ostream& os, const std::string& title,
                 const std::vector<std::string>& columnNames,
                 const std::vector<std::vector<double>>& columns) {
  UNIQ_REQUIRE(columnNames.size() == columns.size(),
               "column names/data mismatch");
  os << "-- " << title << "\n";
  os << std::fixed << std::setprecision(4);
  for (const auto& name : columnNames) os << std::setw(14) << name;
  os << "\n";
  std::size_t rows = 0;
  for (const auto& c : columns) rows = std::max(rows, c.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (const auto& c : columns) {
      if (r < c.size())
        os << std::setw(14) << c[r];
      else
        os << std::setw(14) << "";
    }
    os << "\n";
  }
}

void printCdfSummary(std::ostream& os, const std::string& title,
                     const std::vector<double>& samples) {
  os << "-- " << title << " (n=" << samples.size() << ")\n";
  os << std::fixed << std::setprecision(2);
  for (double p : {10.0, 25.0, 50.0, 75.0, 80.0, 90.0, 95.0, 100.0}) {
    os << "   p" << std::setw(3) << static_cast<int>(p) << " = "
       << percentile(samples, p) << "\n";
  }
}

void printHeader(std::ostream& os, const std::string& figure,
                 const std::string& description) {
  os << "\n==================================================================\n"
     << figure << ": " << description
     << "\n==================================================================\n";
}

}  // namespace uniq::eval
