#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dsp/correlation.h"

namespace uniq::eval {

double channelSimilarity(const std::vector<double>& a,
                         const std::vector<double>& b, double sampleRate,
                         double maxLagMs) {
  UNIQ_REQUIRE(sampleRate > 0, "sample rate must be positive");
  const double maxLag = maxLagMs * 1e-3 * sampleRate;
  const auto peak = dsp::normalizedCorrelationPeak(a, b, maxLag);
  return peak.value;
}

double hrirSimilarity(const head::Hrir& a, const head::Hrir& b,
                      double maxLagMs) {
  const auto per = hrirSimilarityPerEar(a, b, maxLagMs);
  return 0.5 * (per.left + per.right);
}

EarSimilarity hrirSimilarityPerEar(const head::Hrir& a, const head::Hrir& b,
                                   double maxLagMs) {
  UNIQ_REQUIRE(a.sampleRate == b.sampleRate && a.sampleRate > 0,
               "HRIR sample rates must match");
  EarSimilarity s;
  s.left = channelSimilarity(a.left, b.left, a.sampleRate, maxLagMs);
  s.right = channelSimilarity(a.right, b.right, a.sampleRate, maxLagMs);
  return s;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double standardDeviation(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  UNIQ_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::sort(v.begin(), v.end());
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

}  // namespace uniq::eval
