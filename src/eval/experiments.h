#pragma once

#include <cstdint>
#include <vector>

#include "core/aoa.h"
#include "core/pipeline.h"
#include "eval/metrics.h"
#include "head/subject.h"
#include "sim/measurement_session.h"

namespace uniq::eval {

/// Shared configuration for the paper-reproduction experiments.
struct ExperimentConfig {
  std::size_t volunteerCount = 5;
  std::uint64_t populationSeed = 2021;
  sim::MeasurementSessionOptions session{};
  core::CalibrationPipelineOptions pipeline{};
};

/// The study population with per-volunteer gestures: volunteers 4 and 5 use
/// the constrained-arm profile (paper Section 5.1, Figure 19).
struct Volunteer {
  head::Subject subject;
  sim::GestureProfile gesture;
};
std::vector<Volunteer> makeStudyPopulation(const ExperimentConfig& config);

/// Run the full UNIQ calibration for one volunteer.
struct CalibratedVolunteer {
  Volunteer volunteer;
  core::PersonalHrtf personal;
  sim::CalibrationCapture capture;  ///< retains ground truth for evaluation
};
CalibratedVolunteer calibrate(const Volunteer& volunteer,
                              const ExperimentConfig& config);

/// Per-angle far-field HRIR correlations against ground truth (Figure 18):
/// UNIQ's estimate, the global template, and a repeated noisy ground-truth
/// measurement (upper bound).
struct CorrelationSeries {
  std::vector<double> anglesDeg;
  std::vector<double> uniqLeft, uniqRight;
  std::vector<double> globalLeft, globalRight;
  std::vector<double> repeatLeft, repeatRight;
};
CorrelationSeries correlationVsAngle(const CalibratedVolunteer& run,
                                     double angleStepDeg = 5.0,
                                     std::uint64_t noiseSeed = 77);

/// Phone-localization accuracy series (Figure 17): fused angle estimates
/// against the overhead-camera ground truth.
struct LocalizationSeries {
  std::vector<double> truthDeg;
  std::vector<double> estimatedDeg;
  std::vector<double> absErrorDeg;
};
LocalizationSeries localizationAccuracy(const CalibratedVolunteer& run);

/// One known- or unknown-source AoA trial outcome.
struct AoaTrial {
  double truthDeg = 0.0;
  double estimatedDeg = 0.0;
  double absErrorDeg = 0.0;
  bool frontBackCorrect = true;
};

/// Signal classes for the unknown-source experiments (Figure 22).
enum class SignalKind { kWhiteNoise, kMusic, kSpeech, kChirp };
std::vector<double> makeSignal(SignalKind kind, std::size_t samples,
                               double sampleRate, Pcg32& rng);
const char* signalKindName(SignalKind kind);

struct AoaExperimentOptions {
  std::vector<double> trialAnglesDeg;  ///< empty = default sweep 5..175
  double snrDb = 25.0;
  double signalDurationSec = 0.5;
  std::uint64_t seed = 31;
};

/// Run far-field AoA trials against a template table (personal / truth /
/// global). `known` selects the known-source path (chirp + Eq. 9) versus
/// the unknown-source path (Eq. 11).
std::vector<AoaTrial> runAoaTrials(const head::HrtfDatabase& truthDb,
                                   const core::FarFieldTable& templates,
                                   bool known, SignalKind kind,
                                   const AoaExperimentOptions& opts);

/// Fraction of trials with the front/back hemisphere classified correctly.
double frontBackAccuracy(const std::vector<AoaTrial>& trials);

/// Absolute errors of a trial set.
std::vector<double> absErrors(const std::vector<AoaTrial>& trials);

}  // namespace uniq::eval
