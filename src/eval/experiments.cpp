#include "eval/experiments.h"

#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "dsp/signal_generators.h"
#include "sim/recorder.h"

namespace uniq::eval {

std::vector<Volunteer> makeStudyPopulation(const ExperimentConfig& config) {
  const auto subjects =
      head::makePopulation(config.volunteerCount, config.populationSeed);
  std::vector<Volunteer> volunteers;
  volunteers.reserve(subjects.size());
  for (std::size_t i = 0; i < subjects.size(); ++i) {
    Volunteer v;
    v.subject = subjects[i];
    // Volunteers 4 and 5 (indices 3, 4) hold the phone too close to the
    // back of the head, as in the paper's study.
    v.gesture = i >= 3 ? sim::constrainedGesture() : sim::defaultGesture();
    volunteers.push_back(std::move(v));
  }
  return volunteers;
}

CalibratedVolunteer calibrate(const Volunteer& volunteer,
                              const ExperimentConfig& config) {
  const sim::MeasurementSession session(config.session);
  auto capture = session.run(volunteer.subject, volunteer.gesture);
  const core::CalibrationPipeline pipeline(config.pipeline);
  auto personal = pipeline.run(capture);
  return CalibratedVolunteer{volunteer, std::move(personal),
                             std::move(capture)};
}

CorrelationSeries correlationVsAngle(const CalibratedVolunteer& run,
                                     double angleStepDeg,
                                     std::uint64_t noiseSeed) {
  UNIQ_REQUIRE(angleStepDeg >= 1.0, "angle step too small");
  const auto& personalTable = run.personal.table.farTable();
  const double fs = personalTable.sampleRate;

  head::HrtfDatabase::Options dbOpts;
  dbOpts.sampleRate = fs;
  const head::HrtfDatabase truthDb(run.volunteer.subject, dbOpts);
  const head::HrtfDatabase globalDb(head::globalTemplateSubject(), dbOpts);

  const auto truthTable = core::farTableFromDatabase(truthDb);
  const auto globalTable = core::farTableFromDatabase(globalDb);

  Pcg32 rng(noiseSeed);
  CorrelationSeries series;
  for (double ang = 0.0; ang <= 180.0 + 1e-9; ang += angleStepDeg) {
    const auto& truth = truthTable.at(ang);
    const auto& uniq = personalTable.at(ang);
    const auto& global = globalTable.at(ang);
    // "Two separate measurements of ground truth": re-measure with noise.
    const auto repeat = head::withMeasurementNoise(truth, 8.0, rng);

    const auto simUniq = hrirSimilarityPerEar(uniq, truth);
    const auto simGlobal = hrirSimilarityPerEar(global, truth);
    const auto simRepeat = hrirSimilarityPerEar(repeat, truth);

    series.anglesDeg.push_back(ang);
    series.uniqLeft.push_back(simUniq.left);
    series.uniqRight.push_back(simUniq.right);
    series.globalLeft.push_back(simGlobal.left);
    series.globalRight.push_back(simGlobal.right);
    series.repeatLeft.push_back(simRepeat.left);
    series.repeatRight.push_back(simRepeat.right);
  }
  return series;
}

LocalizationSeries localizationAccuracy(const CalibratedVolunteer& run) {
  LocalizationSeries series;
  const auto& stops = run.personal.fusion.stops;
  const auto& truth = run.capture.truth.trajectory;
  for (const auto& stop : stops) {
    if (!stop.localized) continue;
    UNIQ_REQUIRE(stop.sourceIndex < truth.size(),
                 "fused stop points outside the capture");
    const double truthAngle = truth[stop.sourceIndex].trueAngleDeg;
    series.truthDeg.push_back(truthAngle);
    series.estimatedDeg.push_back(stop.angleDeg);
    series.absErrorDeg.push_back(
        angularDistanceDeg(truthAngle, stop.angleDeg));
  }
  return series;
}

std::vector<double> makeSignal(SignalKind kind, std::size_t samples,
                               double sampleRate, Pcg32& rng) {
  switch (kind) {
    case SignalKind::kWhiteNoise:
      return dsp::whiteNoise(samples, rng, 0.25);
    case SignalKind::kMusic:
      return dsp::musicLike(samples, sampleRate, rng);
    case SignalKind::kSpeech:
      return dsp::speechLike(samples, sampleRate, rng);
    case SignalKind::kChirp:
      return dsp::linearChirp(100.0, sampleRate * 0.42, samples, sampleRate);
  }
  throw InvalidArgument("unknown signal kind");
}

const char* signalKindName(SignalKind kind) {
  switch (kind) {
    case SignalKind::kWhiteNoise: return "white-noise";
    case SignalKind::kMusic: return "music";
    case SignalKind::kSpeech: return "speech";
    case SignalKind::kChirp: return "chirp";
  }
  return "?";
}

std::vector<AoaTrial> runAoaTrials(const head::HrtfDatabase& truthDb,
                                   const core::FarFieldTable& templates,
                                   bool known, SignalKind kind,
                                   const AoaExperimentOptions& opts) {
  const double fs = truthDb.options().sampleRate;
  UNIQ_REQUIRE(fs == templates.sampleRate, "sample-rate mismatch");

  std::vector<double> angles = opts.trialAnglesDeg;
  if (angles.empty()) {
    for (double a = 5.0; a <= 175.0; a += 10.0) angles.push_back(a);
  }

  sim::HardwareModel::Options hwOpts;
  hwOpts.sampleRate = fs;
  const sim::HardwareModel hardware(hwOpts);
  sim::RoomModel::Options roomOpts;
  roomOpts.sampleRate = fs;
  roomOpts.seed = opts.seed * 13 + 5;
  const sim::RoomModel room(roomOpts);
  sim::BinauralRecorder::Options recOpts;
  recOpts.snrDb = opts.snrDb;
  const sim::BinauralRecorder recorder(truthDb, hardware, room, recOpts);

  const core::AoaEstimator estimator(templates);
  Pcg32 rng(opts.seed);

  const auto samples =
      static_cast<std::size_t>(opts.signalDurationSec * fs);

  std::vector<AoaTrial> trials;
  trials.reserve(angles.size());
  for (double truthAngle : angles) {
    Pcg32 sigRng = rng.fork(static_cast<std::uint64_t>(truthAngle * 10));
    const auto signal = makeSignal(kind, samples, fs, sigRng);
    // Known sources (a phone chirp) pass the transmit hardware; ambient
    // unknown sources do not.
    const auto rec =
        recorder.recordFarField(truthAngle, signal, sigRng, known);
    core::AoaEstimate est;
    if (known) {
      est = estimator.estimateKnown(rec.left, rec.right, signal);
    } else {
      est = estimator.estimateUnknown(rec.left, rec.right);
    }
    AoaTrial trial;
    trial.truthDeg = truthAngle;
    trial.estimatedDeg = est.angleDeg;
    trial.absErrorDeg = angularDistanceDeg(truthAngle, est.angleDeg);
    trial.frontBackCorrect =
        (truthAngle <= 90.0) == (est.angleDeg <= 90.0);
    trials.push_back(trial);
  }
  return trials;
}

double frontBackAccuracy(const std::vector<AoaTrial>& trials) {
  if (trials.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& t : trials)
    if (t.frontBackCorrect) ++correct;
  return static_cast<double>(correct) / static_cast<double>(trials.size());
}

std::vector<double> absErrors(const std::vector<AoaTrial>& trials) {
  std::vector<double> errs;
  errs.reserve(trials.size());
  for (const auto& t : trials) errs.push_back(t.absErrorDeg);
  return errs;
}

}  // namespace uniq::eval
